package core

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/stats"
)

// Mine runs FARMER over d for the given consequent class and returns the
// interesting rule groups satisfying opt's constraints. Row ids in the
// result refer to d's original row order.
func Mine(d *dataset.Dataset, consequent int, opt Options) (*Result, error) {
	return MineContext(context.Background(), d, consequent, opt)
}

// MineContext is Mine under a context: cancellation is checked at every
// node expansion, so a cancelled or deadline-exceeded run stops within one
// node. On cancellation it returns ctx.Err() together with a non-nil
// Result carrying the partial statistics and the groups already decided.
func MineContext(ctx context.Context, d *dataset.Dataset, consequent int, opt Options) (*Result, error) {
	var groups []RuleGroup
	res, err := MineStream(ctx, d, consequent, opt, func(g RuleGroup) error {
		groups = append(groups, g)
		return nil
	})
	if res != nil {
		res.Groups = groups
	}
	return res, err
}

// MineStream is the streaming form of Mine: each interesting rule group is
// delivered to onGroup at the moment its membership in the result set
// becomes final (step 7 keeps a group exactly when every more general
// group it contains was already decided — see the enumeration-order
// argument in DESIGN.md), instead of being accumulated in Result.Groups.
// The delivery order equals batch Mine's Result.Groups order.
//
// The returned Result carries the run statistics with nil Groups. If
// onGroup returns a non-nil error, mining stops and that error is returned
// verbatim; if ctx is cancelled, mining stops within one node expansion,
// no further groups are delivered, and ctx.Err() is returned alongside the
// partial statistics.
func MineStream(ctx context.Context, d *dataset.Dataset, consequent int, opt Options, onGroup func(RuleGroup) error) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	ex := engine.NewExec(ctx)
	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	ordered, ord, tt, err := resolveView(d, consequent, opt.Prepared, ex)
	if err != nil {
		return nil, err
	}
	m := newMiner(ordered, ord.NumPositive, opt, ex, tt)
	setupDone()

	res := &Result{
		Consequent: consequent,
		NumRows:    len(ordered.Rows),
		NumPos:     ord.NumPositive,
	}
	if onGroup != nil {
		m.emit = func(e *irgEntry) error {
			return onGroup(m.materialize(e, ord))
		}
	}

	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	err = m.run()
	searchDone()
	ex.Stats.ArenaBytes = m.sc.Bytes()
	res.stats = ex.Stats
	return res, err
}

// materialize turns an internal group entry into the public RuleGroup,
// mapping row ids back to the caller's original order and expanding lower
// bounds when requested.
func (m *miner) materialize(e *irgEntry, ord *dataset.Ordering) RuleGroup {
	g := RuleGroup{
		Antecedent: e.items,
		SupPos:     e.supPos,
		SupNeg:     e.tot - e.supPos,
		Confidence: float64(e.supPos) / float64(e.tot),
		Chi:        e.chi,
		Rows:       ord.MapRowsToOriginal(e.rows.Ints()),
	}
	sort.Ints(g.Rows)
	if m.opt.ComputeLowerBounds {
		g.LowerBounds, g.Truncated = m.mineLB(e.items, e.rows)
	}
	return g
}

// tuple is one row of a conditional transposed table: an item together with
// the enumeration-candidate rows it contains at the current node. The Rows
// slice is a view into an ancestor's storage and is never mutated. It is
// the engine's shared Tuple so conditional tables live on the engine arena.
type tuple = engine.Tuple

type miner struct {
	ds     *dataset.Dataset
	tt     *dataset.Transposed
	numPos int // m: rows with the consequent class (ids [0, numPos))
	n      int
	opt    Options

	// ex is the engine execution state: unified stats counters plus the
	// cancellation token polled at every node expansion.
	ex *engine.Exec

	// sc is the engine scratch substrate. sc.InX marks rows in X ∪ Yacc
	// along the current path: the exclusion set of the back scan and, at
	// step 7, exactly R(I(X)) (see DESIGN.md). sc.Cnt/sc.Stamp are the
	// epoch-stamped per-row counters shared by the candidate scan and the
	// back scan; each pass bumps the epoch instead of clearing.
	sc *engine.Scratch

	// skipChildren turns a mineNode call into emission-only (no step 6),
	// used by MineParallel's singleton tasks.
	skipChildren bool

	// recordRejected makes maybeEmit retain the row set of every group the
	// local interestingness filter drops. MineParallel needs the identities,
	// not just a count: a pair task can rediscover a group that another task
	// already found (the sequential traversal absorbs the second node via
	// pruning 1), so rejection events over-count — only the set of distinct
	// rejected row sets is scheduling-independent. rejectedSeen dedups the
	// events worker-locally, so each distinct row set is Cloned once per
	// worker instead of once per rediscovery.
	recordRejected bool
	rejectedSeen   *bitset.Dedup
	rejectedRows   []*bitset.Set

	// emit, when non-nil, streams each kept group out at the moment step 7
	// decides it. The irgEntry store is still retained — the step-7
	// interestingness filter needs the kept row sets — but batch
	// materialization (row-id mapping, lower bounds) happens per group at
	// delivery time.
	emit func(*irgEntry) error

	groups []irgEntry
}

// newMiner builds the per-run miner state. tt, when non-nil, is a prebuilt
// transposed table of d (from a prepared snapshot); nil means build it here.
func newMiner(d *dataset.Dataset, numPos int, opt Options, ex *engine.Exec, tt *dataset.Transposed) *miner {
	n := len(d.Rows)
	if ex == nil {
		ex = engine.NewExec(nil)
	}
	if tt == nil {
		tt = dataset.Transpose(d)
	}
	return &miner{
		ds:     d,
		tt:     tt,
		numPos: numPos,
		n:      n,
		opt:    opt,
		ex:     ex,
		sc:     engine.NewScratch(n),
	}
}

// resolveView resolves the build phase of one run: the ORD-ordered dataset,
// the row permutation, and — when a prepared snapshot is reused — its
// prebuilt transposed table (nil otherwise, meaning the caller builds one).
// Validation is structural: a snapshot was validated at construction, so
// only its identity against d is checked; a raw dataset is validated here.
func resolveView(d *dataset.Dataset, consequent int, snap *dataset.Snapshot, ex *engine.Exec) (*dataset.Dataset, *dataset.Ordering, *dataset.Transposed, error) {
	if snap != nil && snap.Dataset() != d {
		return nil, nil, nil, fmt.Errorf("core: Prepared snapshot was built from a different dataset")
	}
	if snap == nil {
		if err := d.Validate(); err != nil {
			return nil, nil, nil, err
		}
	}
	if consequent < 0 || consequent >= d.NumClasses() {
		return nil, nil, nil, fmt.Errorf("core: consequent class %d outside [0,%d)", consequent, d.NumClasses())
	}
	if snap == nil {
		ordered, ord := dataset.OrderForConsequent(d, consequent)
		return ordered, ord, nil, nil
	}
	v, err := snap.ForConsequent(consequent)
	if err != nil {
		return nil, nil, nil, err
	}
	ex.Stats.PrepareReused++
	return v.Ordered, v.Ord, v.TT, nil
}

// rootTuples builds the conditional transposed table of root node {ri}: one
// tuple per item of row ri, with the item's global occurrences after ri as
// candidates. The table lives on the arena; the caller owns the enclosing
// mark.
func (m *miner) rootTuples(ri int) []tuple {
	row := &m.ds.Rows[ri]
	tuples := m.sc.A.Tup.Alloc(len(row.Items))
	for i, it := range row.Items {
		list := m.tt.Lists[it]
		k := sort.Search(len(list), func(i int) bool { return list[i] > int32(ri) })
		tuples[i] = tuple{Item: it, Rows: list[k:]}
	}
	return tuples
}

// run enumerates the children of the (virtual) root: one node per row, in
// ORD order. The root itself corresponds to X = ∅ and emits no rule.
func (m *miner) run() error {
	if m.n == 0 || m.numPos == 0 {
		return nil
	}
	for ri := 0; ri < m.n; ri++ {
		mark := m.sc.A.Mark()
		tuples := m.rootTuples(ri)
		supp, supn := 0, 0
		if ri < m.numPos {
			supp = 1
		} else {
			supn = 1
		}
		epCount := m.numPos - ri - 1 // positive candidates after ri
		if epCount < 0 {
			epCount = 0
		}
		m.sc.InX.Set(ri)
		err := m.mineNode(tuples, supp, supn, epCount, ri)
		m.sc.InX.Clear(ri)
		m.sc.A.Release(mark)
		if err != nil {
			return err
		}
	}
	return nil
}

// mineNode is MineIRGs of Figure 5 for the node whose row combination is
// recorded in m.sc.InX (X plus rows absorbed by pruning 1 on the path).
// tuples is the X-conditional transposed table, supp/supn the counts of
// identified rows containing I(X)∪C and I(X)∪¬C, epCount the number of
// positive enumeration candidates, and rmax the largest explicitly chosen
// row id. A non-nil error aborts the whole traversal (cancellation or a
// failed emission callback).
func (m *miner) mineNode(tuples []tuple, supp, supn, epCount int, rmax int) error {
	if err := m.ex.EnterNode(); err != nil {
		return err
	}
	if len(tuples) == 0 {
		return nil // I(X) = ∅: no rule here and no deeper candidates
	}

	// Step 1 — pruning strategy 2 (back scan, Lemma 3.6).
	emitOK := true
	if m.backScanHit(tuples, rmax) {
		if !m.opt.DisablePruning2 {
			m.ex.Stats.PrunedBackScan++
			return nil
		}
		// Ablation mode: keep traversing, but this node's group was (or
		// will be) found at its compressed twin; emitting here would
		// report a wrong row set.
		emitOK = false
	}

	// Step 2 — pruning strategy 3, loose bounds (before scanning).
	if !m.opt.DisablePruning3 {
		us2 := supp + epCount
		if us2 < m.opt.MinSup {
			m.ex.Stats.PrunedLooseBound++
			return nil
		}
		if m.opt.needsConfBound() {
			if uc2 := float64(us2) / float64(us2+supn); m.confBoundFails(uc2) {
				m.ex.Stats.PrunedLooseBound++
				return nil
			}
		}
	}

	// Everything from here on allocates on the arena and pops on unwind.
	mark := m.sc.A.Mark()
	defer m.sc.A.Release(mark)

	// Step 3 — scan the conditional table: per-candidate occurrence counts,
	// the U set (rows in ≥1 tuple), the Y set (rows in every tuple), and
	// the per-tuple positive-candidate maximum for Us1.
	ep := m.sc.NextEpoch()
	cnt, stamp := m.sc.Cnt, m.sc.Stamp
	ntup := int32(len(tuples))
	maxPosInTuple := 0
	distinct := 0
	for _, t := range tuples {
		if len(t.Rows) == 0 {
			continue
		}
		// Candidates are sorted with positives (< numPos) first.
		if pos := sort.Search(len(t.Rows), func(i int) bool { return t.Rows[i] >= int32(m.numPos) }); pos > maxPosInTuple {
			maxPosInTuple = pos
		}
		for _, r := range t.Rows {
			if stamp[r] != ep {
				stamp[r] = ep
				cnt[r] = 0
				distinct++
			}
			cnt[r]++
		}
	}

	// Classify the union U into Y (in every tuple) and E' = U − Y, packed
	// into one arena buffer: E' grows from the front, Y from the back.
	// With pruning 1 disabled, Y rows stay ordinary candidates, the node's
	// counts exclude them, and the node must not emit: its row set is not
	// closed, and the fully explicit descendant will report the group.
	union := m.sc.A.I32.Alloc(distinct)
	ne, ny := 0, 0
	yPos, yNeg := 0, 0
	for _, t := range tuples {
		for _, r := range t.Rows {
			if stamp[r] != ep || cnt[r] < 0 {
				continue // already classified
			}
			if cnt[r] == ntup {
				if m.opt.DisablePruning1 {
					emitOK = false
					union[ne] = r
					ne++
				} else {
					ny++
					union[distinct-ny] = r
					if int(r) < m.numPos {
						yPos++
					} else {
						yNeg++
					}
				}
			} else {
				union[ne] = r
				ne++
			}
			cnt[r] = -1 // classified
		}
	}
	eRows, yRows := union[:ne], union[ne:]
	slices.Sort(eRows)

	m.ex.Stats.RowsAbsorbed += int64(len(yRows))
	suppIn := supp // γ'.sup plus this node's chosen row, per the Us1 formula
	supp += yPos
	supn += yNeg

	// Step 4 — pruning strategy 3, tight bounds (after scanning).
	if !m.opt.DisablePruning3 {
		us1 := suppIn + maxPosInTuple
		if us1 < m.opt.MinSup {
			m.ex.Stats.PrunedTightBound++
			return nil
		}
		if m.opt.needsConfBound() {
			if uc1 := float64(us1) / float64(us1+supn); m.confBoundFails(uc1) {
				m.ex.Stats.PrunedTightBound++
				return nil
			}
		}
		if m.opt.MinChi > 0 {
			if stats.Chi2UpperBound(supp+supn, supp, m.n, m.numPos) < m.opt.MinChi {
				m.ex.Stats.PrunedChiBound++
				return nil
			}
		}
		if m.opt.MinEntropyGain > 0 {
			if stats.EntropyGainUpperBound(supp+supn, supp, m.n, m.numPos) < m.opt.MinEntropyGain {
				m.ex.Stats.PrunedGainBound++
				return nil
			}
		}
		if m.opt.MinGiniGain > 0 {
			if stats.GiniGainUpperBound(supp+supn, supp, m.n, m.numPos) < m.opt.MinGiniGain {
				m.ex.Stats.PrunedGainBound++
				return nil
			}
		}
	}

	// Step 5 — pruning strategy 1: absorb Y into the node's row set and
	// drop it from every tuple's candidate list (Lemma 3.5).
	for _, r := range yRows {
		m.sc.InX.Set(int(r))
	}
	cleaned := m.sc.A.Rows.Alloc(len(tuples))
	if len(yRows) == 0 {
		for i := range tuples {
			cleaned[i] = tuples[i].Rows
		}
	} else {
		slices.Sort(yRows)
		total := 0
		for i := range tuples {
			total += len(tuples[i].Rows) - len(yRows) // Y is in every tuple
		}
		backing := m.sc.A.I32.Alloc(total)
		w := 0
		for i := range tuples {
			start := w
			yi := 0
			for _, r := range tuples[i].Rows {
				for yi < len(yRows) && yRows[yi] < r {
					yi++
				}
				if yi < len(yRows) && yRows[yi] == r {
					continue
				}
				backing[w] = r
				w++
			}
			cleaned[i] = backing[start:w:w]
		}
	}

	// Step 6 — children in ORD order. For each candidate r, the child's
	// tuples are exactly the tuples containing r, with candidate rows > r
	// (Lemma 3.3). The tuple lists per candidate are laid out in one flat
	// counted array; candidate positions come from binary search in the
	// sorted eRows (candidate counts are tiny compared to tuple counts).
	if len(eRows) > 0 && !m.skipChildren {
		posOf := func(r int32) int {
			return sort.Search(len(eRows), func(i int) bool { return eRows[i] >= r })
		}
		counts := m.sc.A.I32.Alloc(len(eRows) + 1)
		for ti := range cleaned {
			for _, r := range cleaned[ti] {
				counts[posOf(r)+1]++
			}
		}
		for i := 1; i <= len(eRows); i++ {
			counts[i] += counts[i-1]
		}
		flat := m.sc.A.I32.Alloc(int(counts[len(eRows)]))
		fill := m.sc.A.I32.Alloc(len(eRows))
		for ti := range cleaned {
			for _, r := range cleaned[ti] {
				p := posOf(r)
				flat[int(counts[p])+int(fill[p])] = int32(ti)
				fill[p]++
			}
		}
		posBoundary := sort.Search(len(eRows), func(i int) bool { return eRows[i] >= int32(m.numPos) })
		childBacking := m.sc.A.Tup.Alloc(int(counts[len(eRows)]))
		for p, r := range eRows {
			tis := flat[counts[p]:counts[p+1]]
			child := childBacking[counts[p]:counts[p]:counts[p+1]]
			for _, ti := range tis {
				rows := cleaned[ti]
				k := sort.Search(len(rows), func(i int) bool { return rows[i] > r })
				child = append(child, tuple{Item: tuples[ti].Item, Rows: rows[k:]})
			}
			ca, cb := supp, supn
			childEp := 0
			if int(r) < m.numPos {
				ca++
				childEp = posBoundary - p - 1
			} else {
				cb++
			}
			m.sc.InX.Set(int(r))
			err := m.mineNode(child, ca, cb, childEp, int(r))
			m.sc.InX.Clear(int(r))
			if err != nil {
				return err
			}
		}
	}

	// Step 7 — check whether I(X) → C is the upper bound of an IRG that
	// satisfies the constraints, after all descendants (Lemma 3.4).
	if emitOK {
		if err := m.maybeEmit(tuples, supp, supn); err != nil {
			return err
		}
	}

	for _, r := range yRows {
		m.sc.InX.Clear(int(r))
	}
	return nil
}

// maybeEmit applies the step-7 constraint and interestingness checks for
// the current node, whose row set R(I(X)) is m.sc.InX. A kept group is
// final the moment it is appended (later discoveries are more specific or
// incomparable, so they can never displace it — see MineStream), which is
// what makes streaming delivery sound.
func (m *miner) maybeEmit(tuples []tuple, supp, supn int) error {
	// After cancellation nothing more is delivered: the unwind path from a
	// cancelled descendant passes through the step-7 calls of every
	// ancestor, which would otherwise still emit.
	if err := m.ex.Err(); err != nil {
		return err
	}
	if supp < m.opt.MinSup {
		return nil
	}
	tot := supp + supn
	conf := float64(supp) / float64(tot)
	if conf < m.opt.MinConf {
		return nil
	}
	chi := stats.Chi2(tot, supp, m.n, m.numPos)
	if m.opt.MinChi > 0 && chi < m.opt.MinChi {
		return nil
	}
	if m.opt.MinLift > 0 && stats.Lift(tot, supp, m.n, m.numPos) < m.opt.MinLift {
		return nil
	}
	if m.opt.MinConviction > 0 && stats.Conviction(tot, supp, m.n, m.numPos) < m.opt.MinConviction {
		return nil
	}
	if m.opt.MinEntropyGain > 0 && stats.EntropyGain(tot, supp, m.n, m.numPos) < m.opt.MinEntropyGain {
		return nil
	}
	if m.opt.MinGiniGain > 0 && stats.GiniGain(tot, supp, m.n, m.numPos) < m.opt.MinGiniGain {
		return nil
	}
	// Interestingness: every already-kept group with a subset antecedent —
	// equivalently a proper superset row set (both sets are closed) — must
	// have strictly lower confidence. An equal row set means this very
	// group was already kept.
	inX := m.sc.InX
	for i := range m.groups {
		e := &m.groups[i]
		if e.rows.SupersetOf(inX) {
			if e.rows.Equal(inX) {
				return nil // duplicate discovery (possible only in ablation modes)
			}
			if !confLess(e.supPos, e.tot, supp, tot) {
				m.ex.Stats.GroupsNotInterest++
				if m.recordRejected {
					if m.rejectedSeen == nil {
						m.rejectedSeen = bitset.NewDedup()
					}
					if !m.rejectedSeen.Contains(inX) {
						c := inX.Clone()
						m.rejectedSeen.Add(c)
						m.rejectedRows = append(m.rejectedRows, c)
					}
				}
				return nil
			}
		}
	}
	items := make([]dataset.Item, len(tuples))
	for i, t := range tuples {
		items[i] = t.Item
	}
	slices.Sort(items)
	m.groups = append(m.groups, irgEntry{
		rows:   inX.Clone(),
		supPos: supp,
		tot:    tot,
		items:  items,
		chi:    chi,
	})
	m.ex.Stats.GroupsEmitted++
	if m.emit != nil {
		return m.emit(&m.groups[len(m.groups)-1])
	}
	return nil
}

// confBoundFails reports whether a confidence upper bound already violates
// one of the confidence-monotone constraints (minconf, and through it lift
// and conviction: both are strictly increasing functions of confidence for
// fixed margins n, m).
func (m *miner) confBoundFails(confUB float64) bool {
	if m.opt.MinConf > 0 && confUB < m.opt.MinConf {
		return true
	}
	if m.opt.MinLift > 0 && confUB*float64(m.n)/float64(m.numPos) < m.opt.MinLift {
		return true
	}
	if m.opt.MinConviction > 0 && confUB < 1 {
		conv := (1 - float64(m.numPos)/float64(m.n)) / (1 - confUB)
		if conv < m.opt.MinConviction {
			return true
		}
	}
	return false
}

// backScanHit implements the detection of Lemma 3.6: is there a row r0 with
// r0 < rmax, r0 ∉ X ∪ Yacc, occurring in every tuple of the node? Such a
// row proves every upper bound below this node was already discovered at an
// earlier or compressed node. The scan walks the prefixes of the tuples'
// global row lists (the "back scan" of §3.3).
func (m *miner) backScanHit(tuples []tuple, rmax int) bool {
	if len(tuples) == 0 || rmax == 0 {
		return false
	}
	ep := m.sc.NextEpoch()
	cnt, stamp := m.sc.Cnt, m.sc.Stamp
	inX := m.sc.InX
	ntup := int32(len(tuples))
	for ti, t := range tuples {
		glist := m.tt.Lists[t.Item]
		hitAny := false
		for _, r := range glist {
			if int(r) >= rmax {
				break
			}
			if inX.Test(int(r)) {
				continue
			}
			if ti == 0 {
				stamp[r] = ep
				cnt[r] = 1
				if ntup == 1 {
					return true
				}
				hitAny = true
				continue
			}
			if stamp[r] == ep && cnt[r] == int32(ti) {
				cnt[r]++
				if cnt[r] == ntup {
					return true
				}
				hitAny = true
			}
		}
		if !hitAny {
			return false // some tuple contributes no surviving prefix row
		}
	}
	return false
}
