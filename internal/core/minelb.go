package core

import (
	"context"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// mineLB wraps MineLowerBounds for the miner's reordered dataset.
func (m *miner) mineLB(a []dataset.Item, rowSet *bitset.Set) ([][]dataset.Item, bool) {
	return MineLowerBounds(m.ds, a, rowSet, m.opt.MaxLowerBounds)
}

// MineLowerBounds implements MineLB (Figure 9): given the antecedent A of a
// rule group's upper bound and its row support set R(A) over d, it returns
// the group's lower bounds — the minimal itemsets L ⊆ A with R(L) = R(A).
//
// The incremental scheme of Lemma 3.10 is used: the current lower-bound
// collection Γ is updated for each maximal proper intersection I(r) ∩ A
// over the rows r outside R(A) (Lemma 3.11 lets non-maximal intersections
// be skipped). Lower bounds are encoded as bitsets over positions of A.
//
// When maxLB > 0 and the collection exceeds maxLB, expansion stops and the
// second return value reports truncation; a truncated list is a subset of
// the true lower bounds only up to the last fully processed intersection.
func MineLowerBounds(d *dataset.Dataset, a []dataset.Item, rowSet *bitset.Set, maxLB int) ([][]dataset.Item, bool) {
	lbs, truncated, _ := MineLowerBoundsContext(context.Background(), d, a, rowSet, maxLB)
	return lbs, truncated
}

// MineLowerBoundsContext is MineLowerBounds under a context: cancellation
// is polled once per row during intersection collection and once per
// closed set during the incremental update. On cancellation it returns
// ctx.Err() and nil bounds (a partially updated Γ is not a valid subset of
// the true lower bounds, so nothing partial is reported).
func MineLowerBoundsContext(ctx context.Context, d *dataset.Dataset, a []dataset.Item, rowSet *bitset.Set, maxLB int) ([][]dataset.Item, bool, error) {
	ex := engine.NewExec(ctx)
	k := len(a)
	if k == 0 {
		return nil, false, nil
	}
	posOf := make(map[dataset.Item]int, k)
	for i, it := range a {
		posOf[it] = i
	}

	// Step 2 of Figure 9: collect the distinct maximal intersections.
	var sigma []*bitset.Set
	for ri := range d.Rows {
		if err := ex.Err(); err != nil {
			return nil, false, err
		}
		if rowSet.Test(ri) {
			continue
		}
		s := bitset.New(k)
		for _, it := range d.Rows[ri].Items {
			if p, ok := posOf[it]; ok {
				s.Set(p)
			}
		}
		// s ⊊ A holds: a row containing all of A would be in R(A).
		sigma = insertMaximal(sigma, s)
	}

	// Step 1: initialize Γ with the singletons of A.
	gamma := make([]*bitset.Set, k)
	for i := range gamma {
		gamma[i] = bitset.FromInts(k, i)
	}

	// Step 3: incremental update per added closed set.
	truncated := false
	for _, ap := range sigma {
		if err := ex.Err(); err != nil {
			return nil, false, err
		}
		var g1, g2 []*bitset.Set
		for _, l := range gamma {
			if l.SubsetOf(ap) {
				g1 = append(g1, l)
			} else {
				g2 = append(g2, l)
			}
		}
		if len(g1) == 0 {
			continue // A' covers no current lower bound: Γ unchanged
		}
		// Candidates: l1 ∪ {i} for l1 ∈ Γ1 and i ∈ A − A'.
		seen := bitset.NewDedup()
		var cands []*bitset.Set
		for _, l1 := range g1 {
			for i := 0; i < k; i++ {
				if ap.Test(i) {
					continue
				}
				c := l1.Clone()
				c.Set(i)
				if seen.Add(c) {
					cands = append(cands, c)
				}
			}
		}
		// Keep candidates that cover neither a Γ2 bound nor another
		// candidate.
		gamma = g2
		for ci, c := range cands {
			ok := true
			for _, l2 := range g2 {
				if l2.SubsetOf(c) {
					ok = false
					break
				}
			}
			if ok {
				for cj, other := range cands {
					if cj != ci && other.SubsetOf(c) && !other.Equal(c) {
						ok = false
						break
					}
				}
			}
			if ok {
				gamma = append(gamma, c)
			}
		}
		if maxLB > 0 && len(gamma) > maxLB {
			gamma = gamma[:maxLB]
			truncated = true
			break
		}
	}

	out := make([][]dataset.Item, len(gamma))
	for i, l := range gamma {
		items := make([]dataset.Item, 0, l.Count())
		l.ForEach(func(p int) { items = append(items, a[p]) })
		out[i] = items
	}
	sort.Slice(out, func(x, y int) bool { return lessItems(out[x], out[y]) })
	return out, truncated, nil
}

// insertMaximal adds s to the antichain sets, dropping s if it is a subset
// of an existing element and dropping existing elements that are subsets of
// s. Duplicates collapse.
func insertMaximal(sets []*bitset.Set, s *bitset.Set) []*bitset.Set {
	for _, t := range sets {
		if s.SubsetOf(t) {
			return sets // covered (or equal): contributes nothing (Lemma 3.11)
		}
	}
	out := sets[:0]
	for _, t := range sets {
		if !t.SubsetOf(s) {
			out = append(out, t)
		}
	}
	return append(out, s)
}

// lessItems orders item slices lexicographically, shorter-first on ties.
func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
