package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/dataset"
)

// Exhausted best-first search is exactly the exact miner: same groups,
// same order, no partial flag, zero gap.
func TestAnytimeExhaustedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(424344))
	for iter := 0; iter < 150; iter++ {
		d := randomDataset(rng)
		consequent := rng.Intn(2)
		k := 1 + rng.Intn(4)
		minsup := 1 + rng.Intn(2)
		measure := []Measure{MeasureChi2, MeasureEntropyGain, MeasureGiniGain}[rng.Intn(3)]

		exact, err := TopK(context.Background(), d, consequent, TopKOptions{K: k, Measure: measure, MinSup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		any, err := TopK(context.Background(), d, consequent, TopKOptions{
			K: k, Measure: measure, MinSup: minsup, Strategy: StrategyBestFirst,
		})
		if err != nil {
			t.Fatal(err)
		}
		if any.Partial {
			t.Fatalf("iter %d: exhausted best-first flagged partial", iter)
		}
		if !any.HasGap || any.Gap != 0 {
			t.Fatalf("iter %d: exhausted best-first gap %v (has=%v), want certified 0", iter, any.Gap, any.HasGap)
		}
		if len(any.Groups) != len(exact.Groups) {
			t.Fatalf("iter %d: %d groups vs exact %d", iter, len(any.Groups), len(exact.Groups))
		}
		for i := range any.Groups {
			// Per-rank scores must agree exactly. Representatives may
			// differ where scores tie: the exact walk keeps the first
			// arrival, the anytime heap the canonically best — both are
			// valid top-k answers (difftest's CheckTopK documents the
			// same latitude).
			if any.Groups[i].Score != exact.Groups[i].Score {
				t.Fatalf("iter %d rank %d: score %v vs exact %v", iter, i, any.Groups[i].Score, exact.Groups[i].Score)
			}
			pos, neg := dataset.SupportCounts(d, any.Groups[i].Antecedent, consequent)
			if pos != any.Groups[i].SupPos || neg != any.Groups[i].SupNeg {
				t.Fatalf("iter %d rank %d: group %v stats %d/%d, recomputed %d/%d",
					iter, i, any.Groups[i].Antecedent, any.Groups[i].SupPos, any.Groups[i].SupNeg, pos, neg)
			}
		}
	}
}

// The kept set — including which representative wins a score tie — is
// identical across worker counts: admission under the canonical total
// order plus strict bound pruning makes the answer order-independent.
func TestAnytimeWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(515253))
	for iter := 0; iter < 100; iter++ {
		d := randomDataset(rng)
		consequent := rng.Intn(2)
		k := 1 + rng.Intn(4)
		measure := []Measure{MeasureChi2, MeasureEntropyGain, MeasureGiniGain}[rng.Intn(3)]
		var ref *TopKResult
		for _, workers := range []int{1, 2, 4} {
			res, err := TopK(context.Background(), d, consequent, TopKOptions{
				K: k, Measure: measure, MinSup: 1, Strategy: StrategyBestFirst, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res.Groups, ref.Groups) {
				t.Fatalf("iter %d: workers=%d groups differ from workers=1:\n%+v\nvs\n%+v",
					iter, workers, res.Groups, ref.Groups)
			}
		}
	}
}

// A node budget stops the search within one expansion per worker, returns
// no error, and still reports internally-consistent groups.
func TestAnytimeNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(626364))
	lists := make([][]dataset.Item, 40)
	classes := make([]int, 40)
	for i := range lists {
		classes[i] = i % 2
		for it := 0; it < 20; it++ {
			if rng.Float64() < 0.5 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	d, err := dataset.FromItemLists(lists, classes, 20, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}

	res, err := TopK(context.Background(), d, 0, TopKOptions{
		K: 5, MinSup: 2, MaxNodes: 50,
	})
	if err != nil {
		t.Fatalf("budget stop must not be an error, got %v", err)
	}
	if res.NodesExpanded > 51 {
		t.Fatalf("expanded %d nodes with a budget of 50 (one-overshoot allowed)", res.NodesExpanded)
	}
	if !res.Partial {
		t.Fatalf("50-node budget on this dataset should leave the search partial")
	}
	if !res.HasGap {
		t.Fatal("best-first budget stop must certify a gap")
	}
	for _, g := range res.Groups {
		pos, neg := dataset.SupportCounts(d, g.Antecedent, 0)
		if pos != g.SupPos || neg != g.SupNeg {
			t.Fatalf("group %v stats %d/%d, recomputed %d/%d", g.Antecedent, g.SupPos, g.SupNeg, pos, neg)
		}
	}

	// Parallel workers draw on one shared budget: overshoot is at most one
	// node per worker.
	res4, err := TopK(context.Background(), d, 0, TopKOptions{
		K: 5, MinSup: 2, MaxNodes: 50, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res4.NodesExpanded > 54 {
		t.Fatalf("4 workers expanded %d nodes with a budget of 50", res4.NodesExpanded)
	}
}

// The gap certificate is sound: no group outside the kept set scores more
// than kth + Gap, for budget-stopped best-first and for relaxed leap runs.
func TestAnytimeGapCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(737475))
	for iter := 0; iter < 120; iter++ {
		d := randomDataset(rng)
		consequent := rng.Intn(2)
		k := 1 + rng.Intn(3)
		measure := []Measure{MeasureChi2, MeasureEntropyGain, MeasureGiniGain}[rng.Intn(3)]

		oracle := topKOracleScores(d, consequent, k, measure, 1)

		for name, opt := range map[string]TopKOptions{
			"budget": {K: k, Measure: measure, MinSup: 1, Strategy: StrategyBestFirst, MaxNodes: int64(1 + rng.Intn(8))},
			"leap":   {K: k, Measure: measure, MinSup: 1, Strategy: StrategyLeap, Delta: 0.5 * rng.Float64()},
		} {
			res, err := TopK(context.Background(), d, consequent, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !res.HasGap {
				t.Fatalf("iter %d %s: no gap certificate", iter, name)
			}
			if len(oracle) == 0 {
				continue
			}
			kth := 0.0
			if len(res.Groups) == k {
				kth = res.Groups[len(res.Groups)-1].Score
			}
			// Certificate: the true k-th best cannot exceed kth + gap.
			// Only meaningful when a true k-th best exists — with fewer
			// than k groups in the dataset the claim is vacuous (and the
			// non-partial exactness check below covers the result).
			if len(oracle) == k && oracle[len(oracle)-1] > kth+res.Gap+1e-9 {
				t.Fatalf("iter %d %s: oracle kth %v exceeds certified kth+gap = %v+%v (partial=%v)",
					iter, name, oracle[len(oracle)-1], kth, res.Gap, res.Partial)
			}
			// And a non-partial answer must be exactly right.
			if !res.Partial {
				want := oracle
				if len(res.Groups) != len(want) {
					t.Fatalf("iter %d %s: complete run kept %d, oracle %d", iter, name, len(res.Groups), len(want))
				}
				for i := range res.Groups {
					if diff := res.Groups[i].Score - want[i]; diff > 1e-9 || diff < -1e-9 {
						t.Fatalf("iter %d %s rank %d: %v vs oracle %v", iter, name, i, res.Groups[i].Score, want[i])
					}
				}
			}
		}
	}
}

// A wall-clock budget returns promptly — within the budget plus scheduling
// slack — and without an error.
func TestAnytimeDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(848586))
	lists := make([][]dataset.Item, 60)
	classes := make([]int, 60)
	for i := range lists {
		classes[i] = i % 2
		for it := 0; it < 30; it++ {
			if rng.Float64() < 0.6 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	d, err := dataset.FromItemLists(lists, classes, 30, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := TopK(context.Background(), d, 0, TopKOptions{K: 10, MinSup: 2, MaxMillis: 30})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("deadline stop must not be an error, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("30ms budget took %v", elapsed)
	}
	if res.NodesExpanded == 0 {
		t.Fatal("no nodes expanded before the deadline")
	}
}

// The sampler needs a budget, replays identically under one seed, and
// reports internally-consistent groups without a certificate.
func TestAnytimeSampler(t *testing.T) {
	d := dataset.PaperExample()
	if _, err := TopK(context.Background(), d, 0, TopKOptions{K: 3, MinSup: 1, Strategy: StrategySample}); err == nil {
		t.Fatal("unbudgeted sampler accepted")
	}
	opt := TopKOptions{K: 3, MinSup: 1, Strategy: StrategySample, MaxNodes: 500, Seed: 7}
	a, err := TopK(context.Background(), d, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopK(context.Background(), d, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Groups, b.Groups) {
		t.Fatalf("same seed, different samples:\n%+v\nvs\n%+v", a.Groups, b.Groups)
	}
	if !a.Partial || a.HasGap {
		t.Fatalf("sampler must be partial without a certificate, got partial=%v hasGap=%v", a.Partial, a.HasGap)
	}
	for _, g := range a.Groups {
		pos, neg := dataset.SupportCounts(d, g.Antecedent, 0)
		if pos != g.SupPos || neg != g.SupNeg {
			t.Fatalf("group %v stats %d/%d, recomputed %d/%d", g.Antecedent, g.SupPos, g.SupNeg, pos, neg)
		}
	}
	// On the tiny paper example 500 nodes of walking finds the true best
	// group.
	exact, err := TopK(context.Background(), d, 0, TopKOptions{K: 3, MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) == 0 || a.Groups[0].Score != exact.Groups[0].Score {
		t.Fatalf("sampler missed the best group: %v vs %v", a.Groups, exact.Groups)
	}
}

// Cancellation (as opposed to a budget stop) still surfaces ctx.Err().
func TestAnytimeCancellation(t *testing.T) {
	d := dataset.PaperExample()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := TopK(ctx, d, 0, TopKOptions{K: 3, MinSup: 1, Strategy: StrategyBestFirst})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if res == nil {
		t.Fatal("cancelled run must still return its best-so-far result")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, s := range []Strategy{StrategyExact, StrategyBestFirst, StrategyLeap, StrategySample} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("round-trip %v: got %v, %v", s, got, err)
		}
	}
	if got, err := ParseStrategy(""); err != nil || got != StrategyExact {
		t.Fatalf("empty strategy: %v, %v", got, err)
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if _, err := TopK(context.Background(), dataset.PaperExample(), 0, TopKOptions{K: 1, MinSup: 1, Strategy: StrategyLeap, Delta: -1}); err == nil {
		t.Fatal("negative delta accepted")
	}
}
