package core

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/dataset"
)

// RuleGroup is one interesting rule group, identified by its unique upper
// bound (Lemma 2.1) and, optionally, its lower bounds. Every member rule
// A → C with LowerBound ⊆ A ⊆ Antecedent for some lower bound belongs to the
// group (Lemma 2.2) and shares Support, Confidence and Chi.
type RuleGroup struct {
	// Antecedent is the upper bound's antecedent: the unique most-specific
	// itemset of the group, ascending item ids.
	Antecedent []dataset.Item

	// LowerBounds holds the most-general antecedents of the group, each
	// ascending; populated only when Options.ComputeLowerBounds is set.
	LowerBounds [][]dataset.Item

	// Truncated reports that LowerBounds hit Options.MaxLowerBounds.
	Truncated bool

	// Rows is R(Antecedent) in the caller's original row ids, ascending.
	Rows []int

	SupPos int // |R(A ∪ C)| — the rule support
	SupNeg int // |R(A ∪ ¬C)|

	Confidence float64
	Chi        float64
}

// Support returns the rule support |R(A ∪ C)| (the paper's γ.sup).
func (g *RuleGroup) Support() int { return g.SupPos }

// Matches reports whether the row's itemset contains the group's upper
// bound (and therefore every member antecedent).
func (g *RuleGroup) Matches(r *dataset.Row) bool {
	for _, it := range g.Antecedent {
		if !r.HasItem(it) {
			return false
		}
	}
	return true
}

// MatchesAnyLowerBound reports whether the row contains at least one lower
// bound of the group, i.e. whether the row matches some member rule of the
// group (the most general ones).
func (g *RuleGroup) MatchesAnyLowerBound(r *dataset.Row) bool {
	for _, lb := range g.LowerBounds {
		ok := true
		for _, it := range lb {
			if !r.HasItem(it) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Format renders the group using the dataset's item names.
func (g *RuleGroup) Format(d *dataset.Dataset, consequent string) string {
	var b strings.Builder
	names := make([]string, len(g.Antecedent))
	for i, it := range g.Antecedent {
		names[i] = d.ItemName(it)
	}
	fmt.Fprintf(&b, "{%s} -> %s  (sup=%d conf=%.3f chi=%.2f rows=%v",
		strings.Join(names, ","), consequent, g.SupPos, g.Confidence, g.Chi, g.Rows)
	if len(g.LowerBounds) > 0 {
		fmt.Fprintf(&b, " lower=%d", len(g.LowerBounds))
	}
	b.WriteString(")")
	return b.String()
}

// Result is the outcome of one Mine call.
type Result struct {
	// Groups holds the interesting rule groups in discovery order.
	Groups []RuleGroup

	// Consequent is the class index the rules predict.
	Consequent int

	// NumRows and NumPos are the dataset row count and consequent-class row
	// count (the n and m of the chi-square margins).
	NumRows, NumPos int

	stats Stats
}

// Stats returns the engine's unified run statistics.
func (r *Result) Stats() Stats { return r.stats }

// Count returns the number of rule groups in the batch result.
func (r *Result) Count() int { return len(r.Groups) }

// irgEntry is the internal store for step 7: the group's row support set
// over the reordered dataset plus exact confidence as a fraction. Antecedent
// containment between closed sets reverses row-set containment, so subset
// checks run on the (small) row bitsets.
type irgEntry struct {
	rows   *bitset.Set
	supPos int
	tot    int // supPos + supNeg
	items  []dataset.Item
	chi    float64
}

// confLess reports supA/totA < supB/totB exactly (cross multiplication).
func confLess(supA, totA, supB, totB int) bool {
	return int64(supA)*int64(totB) < int64(supB)*int64(totA)
}

// confGreater reports supA/totA > supB/totB exactly.
func confGreater(supA, totA, supB, totB int) bool {
	return int64(supA)*int64(totB) > int64(supB)*int64(totA)
}
