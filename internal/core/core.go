package core
