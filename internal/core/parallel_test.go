package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

func TestMineParallelMatchesSequentialOnPaperExample(t *testing.T) {
	d := dataset.PaperExample()
	for _, workers := range []int{1, 2, 4, 0} {
		seq := mustMine(t, d, 0, Options{MinSup: 1, ComputeLowerBounds: true})
		par, err := MineParallel(d, 0, Options{MinSup: 1, ComputeLowerBounds: true}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(coreKeys(seq), coreKeys(par)) {
			t.Fatalf("workers=%d: parallel differs\nseq %v\npar %v",
				workers, coreKeys(seq), coreKeys(par))
		}
		// Lower bounds must also match (set comparison keyed by rows).
		lbOf := func(r *Result) map[string][][]dataset.Item {
			out := map[string][][]dataset.Item{}
			for _, g := range r.Groups {
				out[groupKey(g.Antecedent, g.Rows, g.SupPos, g.SupNeg)] = g.LowerBounds
			}
			return out
		}
		if !reflect.DeepEqual(lbOf(seq), lbOf(par)) {
			t.Fatalf("workers=%d: lower bounds differ", workers)
		}
	}
}

func TestMineParallelValidation(t *testing.T) {
	d := dataset.PaperExample()
	if _, err := MineParallel(d, 0, Options{MinSup: 0}, 2); err == nil {
		t.Fatal("invalid options accepted")
	}
	if _, err := MineParallel(d, 9, Options{MinSup: 1}, 2); err == nil {
		t.Fatal("bad consequent accepted")
	}
}

func TestMineParallelEmptyDataset(t *testing.T) {
	res, err := MineParallel(&dataset.Dataset{ClassNames: []string{"a", "b"}}, 0, Options{MinSup: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Fatal("groups from empty dataset")
	}
}

// Property: parallel equals sequential across random datasets, constraint
// settings, and worker counts.
func TestPropertyParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for iter := 0; iter < 150; iter++ {
		d := randomDataset(rng)
		opt := Options{
			MinSup:  1 + rng.Intn(2),
			MinConf: []float64{0, 0.5, 0.9}[rng.Intn(3)],
			MinChi:  []float64{0, 0.5}[rng.Intn(2)],
		}
		workers := 1 + rng.Intn(4)
		seq := mustMine(t, d, 0, opt)
		par, err := MineParallel(d, 0, opt, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(coreKeys(seq), coreKeys(par)) {
			t.Fatalf("iter %d workers=%d (opt %+v):\nseq %v\npar %v\nrows %+v",
				iter, workers, opt, coreKeys(seq), coreKeys(par), d.Rows)
		}
	}
}

// Output order is deterministic regardless of scheduling.
func TestMineParallelDeterministicOrder(t *testing.T) {
	d := dataset.PaperExample()
	first, err := MineParallel(d, 0, Options{MinSup: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := MineParallel(d, 0, Options{MinSup: 1}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Groups) != len(first.Groups) {
			t.Fatal("group count varies")
		}
		for j := range again.Groups {
			if !reflect.DeepEqual(again.Groups[j].Antecedent, first.Groups[j].Antecedent) {
				t.Fatal("group order varies across runs")
			}
		}
	}
}
