package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/reference"
	"repro/internal/stats"
)

// topKOracle ranks ALL rule groups by the measure and returns the top k
// scores (with the same tie semantics: k best scores, any representatives).
func topKOracleScores(d *dataset.Dataset, consequent, k int, measure Measure, minsup int) []float64 {
	n := len(d.Rows)
	m := d.ClassCount(consequent)
	var scores []float64
	for _, g := range reference.AllRuleGroups(d, consequent) {
		if g.SupPos < minsup {
			continue
		}
		scores = append(scores, measure.value(g.SupPos+g.SupNeg, g.SupPos, n, m))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

func TestMineTopKValidation(t *testing.T) {
	d := dataset.PaperExample()
	if _, err := MineTopK(d, 0, 0, MeasureChi2, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := MineTopK(d, 0, 1, MeasureChi2, 0); err == nil {
		t.Fatal("minsup=0 accepted")
	}
	if _, err := MineTopK(d, 7, 1, MeasureChi2, 1); err == nil {
		t.Fatal("bad consequent accepted")
	}
}

func TestMineTopKPaperExample(t *testing.T) {
	d := dataset.PaperExample()
	for _, measure := range []Measure{MeasureChi2, MeasureEntropyGain, MeasureGiniGain} {
		got, err := MineTopK(d, 0, 3, measure, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := topKOracleScores(d, 0, 3, measure, 1)
		if len(got) != len(want) {
			t.Fatalf("measure %d: %d groups, want %d", measure, len(got), len(want))
		}
		for i := range got {
			if diff := got[i].Score - want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("measure %d rank %d: score %v, want %v", measure, i, got[i].Score, want[i])
			}
		}
		// Best-first ordering.
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				t.Fatalf("measure %d: not best-first at %d", measure, i)
			}
		}
	}
}

func TestMineTopKScoresConsistent(t *testing.T) {
	d := dataset.PaperExample()
	got, err := MineTopK(d, 0, 5, MeasureChi2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range got {
		// The reported antecedent must reproduce the reported stats.
		pos, neg := dataset.SupportCounts(d, g.Antecedent, 0)
		if pos != g.SupPos || neg != g.SupNeg {
			t.Fatalf("group %v stats %d/%d, recomputed %d/%d",
				g.Antecedent, g.SupPos, g.SupNeg, pos, neg)
		}
		want := stats.Chi2(pos+neg, pos, d.NumRows(), d.ClassCount(0))
		if diff := g.Score - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("group %v score %v, want %v", g.Antecedent, g.Score, want)
		}
	}
}

// Property: the top-k scores match the oracle across random datasets,
// measures, and k.
func TestPropertyTopKAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(818283))
	for iter := 0; iter < 200; iter++ {
		d := randomDataset(rng)
		consequent := rng.Intn(2)
		k := 1 + rng.Intn(4)
		minsup := 1 + rng.Intn(2)
		measure := []Measure{MeasureChi2, MeasureEntropyGain, MeasureGiniGain}[rng.Intn(3)]
		got, err := MineTopK(d, consequent, k, measure, minsup)
		if err != nil {
			t.Fatal(err)
		}
		want := topKOracleScores(d, consequent, k, measure, minsup)
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d groups, want %d\nrows %+v", iter, len(got), len(want), d.Rows)
		}
		for i := range got {
			if diff := got[i].Score - want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("iter %d rank %d: %v vs oracle %v (measure %d, k=%d, minsup=%d)\nrows %+v",
					iter, i, got[i].Score, want[i], measure, k, minsup, d.Rows)
			}
		}
	}
}

// The dynamic bound must actually prune on a structured dataset.
func TestTopKBoundPrunes(t *testing.T) {
	spec := struct {
		rows, items int
	}{14, 12}
	rng := rand.New(rand.NewSource(5))
	lists := make([][]dataset.Item, spec.rows)
	classes := make([]int, spec.rows)
	for i := range lists {
		classes[i] = i % 2
		for it := 0; it < spec.items; it++ {
			if rng.Float64() < 0.5 || (classes[i] == 0 && it < 3) {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	d, err := dataset.FromItemLists(lists, classes, spec.items, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MineTopK(d, 0, 1, MeasureChi2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d groups", len(got))
	}
	want := topKOracleScores(d, 0, 1, MeasureChi2, 1)
	if diff := got[0].Score - want[0]; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("best score %v, oracle %v", got[0].Score, want[0])
	}
}
