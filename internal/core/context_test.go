package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/bitset"
)

// A context cancelled before the run starts must stop within one node
// expansion: the cancellation contract is checked at EnterNode, so the
// first node entered observes it and nothing deeper runs.
func TestMineContextCancelledBeforeStart(t *testing.T) {
	d := stressDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MineContext(ctx, d, 0, Options{MinSup: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned nil Result; want partial stats")
	}
	if res.Stats().NodesVisited > 1 {
		t.Fatalf("NodesVisited = %d after pre-cancelled context; want <= 1 (stop within one node expansion)",
			res.Stats().NodesVisited)
	}
	if len(res.Groups) != 0 {
		t.Fatalf("pre-cancelled run emitted %d groups", len(res.Groups))
	}
}

// Cancelling from inside the streaming callback must stop the run within
// one node expansion and deliver nothing further — including on the unwind
// path, where ancestors of the cancelled node reach their own step 7.
func TestMineStreamCancelMidRun(t *testing.T) {
	d := stressDataset(t)
	opt := Options{MinSup: 2, MinConf: 0.5}
	full, err := Mine(d, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Groups) < 3 {
		t.Fatalf("need >= 3 groups for a mid-run cancel, got %d", len(full.Groups))
	}

	for stopAt := 1; stopAt < len(full.Groups); stopAt += (len(full.Groups)-1)/4 + 1 {
		ctx, cancel := context.WithCancel(context.Background())
		var got []RuleGroup
		res, err := MineStream(ctx, d, 0, opt, func(g RuleGroup) error {
			got = append(got, g)
			if len(got) == stopAt {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("stopAt=%d: err = %v, want context.Canceled", stopAt, err)
		}
		if len(got) != stopAt {
			t.Fatalf("stopAt=%d: %d groups delivered after cancel", stopAt, len(got))
		}
		// The emitted prefix must be exactly the batch run's prefix.
		if !reflect.DeepEqual(got, full.Groups[:stopAt]) {
			t.Fatalf("stopAt=%d: cancelled-run prefix differs from batch order", stopAt)
		}
		if res.Stats().NodesVisited > full.Stats().NodesVisited {
			t.Fatalf("stopAt=%d: cancelled run visited %d nodes, full run %d",
				stopAt, res.Stats().NodesVisited, full.Stats().NodesVisited)
		}
	}
}

// An error returned by the streaming callback aborts the run and surfaces
// verbatim.
func TestMineStreamCallbackError(t *testing.T) {
	d := stressDataset(t)
	boom := errors.New("boom")
	calls := 0
	_, err := MineStream(context.Background(), d, 0, Options{MinSup: 2}, func(RuleGroup) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after returning an error", calls)
	}
}

// Streaming delivery must be byte-identical to batch Mine: same groups,
// same order, including lower bounds.
func TestMineStreamEquivalentToBatch(t *testing.T) {
	d := stressDataset(t)
	opt := Options{MinSup: 3, MinConf: 0.6, ComputeLowerBounds: true}
	batch := mustMine(t, d, 0, opt)
	var streamed []RuleGroup
	res, err := MineStream(context.Background(), d, 0, opt, func(g RuleGroup) error {
		streamed = append(streamed, g)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, batch.Groups) {
		t.Fatalf("streamed groups differ from batch:\n got %d\nwant %d", len(streamed), len(batch.Groups))
	}
	if res.Stats().Counters != batch.Stats().Counters {
		t.Fatalf("streamed counters differ from batch:\n got %+v\nwant %+v",
			res.Stats().Counters, batch.Stats().Counters)
	}
	if res.Groups != nil {
		t.Fatal("MineStream accumulated Groups; streaming must not batch")
	}
}

// A cancelled MineParallelContext must not leak worker goroutines: workers
// drain the task queue without expanding nodes and exit before the call
// returns.
func TestMineParallelContextCancelDrains(t *testing.T) {
	d := stressDataset(t)
	opt := Options{MinSup: 2, MinConf: 0.5, ComputeLowerBounds: true}
	before := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // cancel up front: every task should be skipped
		res, err := MineParallelContext(ctx, d, 0, opt, 4)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res == nil {
			t.Fatal("cancelled parallel run returned nil Result")
		}
		if len(res.Groups) != 0 {
			t.Fatalf("cancelled parallel run returned %d groups; fixpoint must not run on partial candidates",
				len(res.Groups))
		}
		// Workers enter at most one node each before observing cancellation.
		if res.Stats().NodesVisited > 4 {
			t.Fatalf("cancelled run visited %d nodes with 4 workers; want <= 4", res.Stats().NodesVisited)
		}
	}

	// All workers must have exited by return; poll briefly for the runtime
	// to reap them before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled runs",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// A deadline that expires mid-run surfaces DeadlineExceeded with partial
// stats from MineParallelContext.
func TestMineParallelContextDeadline(t *testing.T) {
	d := stressDataset(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := MineParallelContext(ctx, d, 0, Options{MinSup: 2}, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || len(res.Groups) != 0 {
		t.Fatal("expired-deadline run should return partial stats and no groups")
	}
}

// MineTopKContext under a pre-cancelled context stops within one node.
func TestMineTopKContextCancelled(t *testing.T) {
	d := stressDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	groups, err := MineTopKContext(ctx, d, 0, 5, MeasureChi2, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(groups) != 0 {
		t.Fatalf("pre-cancelled top-k returned %d groups", len(groups))
	}
}

// MineLowerBoundsContext polls cancellation and reports nothing partial.
func TestMineLowerBoundsContextCancelled(t *testing.T) {
	d := stressDataset(t)
	res := mustMine(t, d, 0, Options{MinSup: 2})
	if len(res.Groups) == 0 {
		t.Fatal("no groups to expand")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := res.Groups[0]
	rowSet := bitset.FromInts(len(d.Rows), g.Rows...)
	lbs, _, err := MineLowerBoundsContext(ctx, d, g.Antecedent, rowSet, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if lbs != nil {
		t.Fatal("cancelled MineLowerBoundsContext returned partial bounds")
	}
}
