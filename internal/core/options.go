// Package core implements FARMER (Cong, Tung, Xu, Pan, Yang; SIGMOD 2004):
// mining the upper and lower bounds of interesting rule groups (IRGs) from
// datasets with few rows and very many columns by depth-first enumeration of
// row combinations over conditional transposed tables.
//
// The entry point is Mine. The implementation follows Figure 5 of the paper:
//
//	step 1  pruning strategy 2 — back scan (Lemma 3.6)
//	step 2  pruning strategy 3 — loose support/confidence bounds (Us2, Uc2)
//	step 3  scan the conditional transposed table (U and Y row sets)
//	step 4  pruning strategy 3 — tight bounds (Us1, Uc1, chi-square bound)
//	step 5  pruning strategy 1 — absorb Y rows (Lemma 3.5)
//	step 6  recurse into child row combinations in ORD order
//	step 7  emit I(X) → C as an IRG upper bound if it beats every
//	        constraint-satisfying subset rule group already found
//
// Lower bounds are recovered per group with MineLB (Figure 9).
package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// Options configures a FARMER run.
type Options struct {
	// MinSup is the minimum rule support |R(A ∪ C)| (number of consequent-
	// class rows matching the antecedent). Must be ≥ 1.
	MinSup int

	// MinConf is the minimum confidence |R(A∪C)| / |R(A)| in [0, 1].
	// Zero disables confidence pruning.
	MinConf float64

	// MinChi is the minimum chi-square value of the rule's 2×2 contingency
	// table. Zero disables the chi-square constraint and its pruning.
	MinChi float64

	// Extension constraints (footnote 3 of the paper: "other constraints
	// such as lift, conviction, entropy gain, gini … can be handled
	// similarly"). Each is disabled at its zero value. Lift and conviction
	// are monotone in confidence, so they prune through the confidence
	// upper bounds; entropy gain and gini gain are convex impurity gains
	// and prune through the same vertex bound as chi-square
	// (Morishita & Sese).
	MinLift        float64
	MinConviction  float64
	MinEntropyGain float64
	MinGiniGain    float64

	// ComputeLowerBounds also runs MineLB for every discovered group,
	// populating RuleGroup.LowerBounds (the paper reports FARMER's runtime
	// with this enabled).
	ComputeLowerBounds bool

	// MaxLowerBounds, when > 0, caps the number of lower bounds kept per
	// group; groups that hit the cap are flagged Truncated. The count of
	// lower bounds can be exponential in pathological inputs.
	MaxLowerBounds int

	// Ablation switches. Disabling a pruning strategy never changes the
	// mined rule groups — it only removes the corresponding search-space
	// cut, which the ablation benchmarks measure. (With pruning 2 disabled
	// the back scan still runs to suppress re-emission of already-found
	// groups; only its subtree cut is forfeited.)
	DisablePruning1 bool // do not absorb Y rows / do not compress nodes
	DisablePruning2 bool // do not cut subtrees on back-scan hits
	DisablePruning3 bool // do not apply support/confidence/chi bounds

	// Workers selects the execution mode of the canonical entry point
	// (farmer.RunFARMER): 0 runs the sequential miner; any other value
	// runs the work-stealing parallel scheduler with that many workers
	// (negative = GOMAXPROCS). Ignored by the low-level Mine/MineParallel
	// functions, which take the mode from their own name and arguments.
	Workers int

	// OnGroup, when non-nil, switches the canonical entry point to
	// streaming emission: each interesting rule group is delivered as soon
	// as it is accepted, in batch order, and the result accumulates no
	// Groups. Streaming is sequential; combining OnGroup with Workers != 0
	// is an error. Ignored by the low-level Mine* functions.
	OnGroup func(RuleGroup) error

	// Prepared, when non-nil, supplies a precompiled snapshot of the
	// dataset being mined: the run reuses the snapshot's ORD ordering and
	// transposed table instead of rebuilding them (Stats.PrepareReused
	// records the reuse; the groups and Counters are identical either
	// way). The snapshot must have been built from the exact *Dataset
	// passed to the mining call — a mismatch is an error.
	Prepared *dataset.Snapshot
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	switch {
	case o.MinSup < 1:
		return fmt.Errorf("core: MinSup must be >= 1, got %d", o.MinSup)
	case o.MinConf < 0 || o.MinConf > 1:
		return fmt.Errorf("core: MinConf %v outside [0,1]", o.MinConf)
	case o.MinChi < 0:
		return fmt.Errorf("core: MinChi %v negative", o.MinChi)
	case o.MinLift < 0:
		return fmt.Errorf("core: MinLift %v negative", o.MinLift)
	case o.MinConviction < 0:
		return fmt.Errorf("core: MinConviction %v negative", o.MinConviction)
	case o.MinEntropyGain < 0 || o.MinEntropyGain > 1:
		return fmt.Errorf("core: MinEntropyGain %v outside [0,1]", o.MinEntropyGain)
	case o.MinGiniGain < 0 || o.MinGiniGain > 0.5:
		return fmt.Errorf("core: MinGiniGain %v outside [0,0.5]", o.MinGiniGain)
	case o.MaxLowerBounds < 0:
		return fmt.Errorf("core: MaxLowerBounds %d negative", o.MaxLowerBounds)
	}
	return nil
}

// needsConfBound reports whether any enabled constraint prunes through the
// confidence upper bounds (confidence itself, lift, conviction).
func (o Options) needsConfBound() bool {
	return o.MinConf > 0 || o.MinLift > 0 || o.MinConviction > 0
}

// Stats records search effort and pruning effectiveness for one run. It is
// the engine's unified instrumentation record: the deterministic pruning
// counters (engine.Counters, fields promoted) plus wall-clock phase timings
// in Stats.Timings. Tests that assert run-to-run equality compare the
// Counters portion.
type Stats = engine.Stats
