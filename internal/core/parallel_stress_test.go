package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"repro/internal/dataset"
)

// stressDataset builds a ~40-row two-class synthetic dataset with planted
// class structure (three items enriched in class C) so the enumeration tree
// is deep enough to schedule many depth-2 tasks across workers.
func stressDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	const rows, items = 40, 50
	rng := rand.New(rand.NewSource(4041))
	lists := make([][]dataset.Item, rows)
	classes := make([]int, rows)
	for i := 0; i < rows; i++ {
		classes[i] = i % 2
		for it := 0; it < items; it++ {
			p := 0.22
			if classes[i] == 0 && it < 3 {
				p = 0.9
			}
			if rng.Float64() < p {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	d, err := dataset.FromItemLists(lists, classes, items, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sortedGroups canonicalizes a result's group order (sequential Mine emits
// in discovery order, MineParallel in antecedent order) for byte-identical
// comparison of every field, including lower bounds.
func sortedGroups(res *Result) []RuleGroup {
	out := append([]RuleGroup(nil), res.Groups...)
	sort.SliceStable(out, func(i, j int) bool {
		return lessItems(out[i].Antecedent, out[j].Antecedent)
	})
	return out
}

// MineParallel under worker counts {1, 2, GOMAXPROCS} must return results
// byte-identical to sequential Mine, and its summed Stats counters must be
// identical regardless of how the scheduler spreads the task queue (run
// with -race; the workers share the transposed table read-only).
func TestMineParallelStress(t *testing.T) {
	d := stressDataset(t)
	opt := Options{MinSup: 3, MinConf: 0.6, ComputeLowerBounds: true}
	seq := mustMine(t, d, 0, opt)
	want := sortedGroups(seq)
	if len(want) == 0 {
		t.Fatal("stress dataset mined no groups; tighten the generator")
	}

	var baseline *Stats
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		par, err := MineParallel(d, 0, opt, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := sortedGroups(par); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from sequential Mine\n got %d groups\nwant %d groups",
				workers, len(got), len(want))
		}
		if par.NumRows != seq.NumRows || par.NumPos != seq.NumPos || par.Consequent != seq.Consequent {
			t.Fatalf("workers=%d: metadata differs: %+v vs %+v", workers, par, seq)
		}
		// The summed counters are a deterministic property of the task
		// decomposition, not of scheduling: every worker count must agree.
		if baseline == nil {
			s := par.Stats()
			baseline = &s
		} else if par.Stats().Counters != baseline.Counters {
			t.Fatalf("workers=%d: summed stats differ across worker counts\n got %+v\nwant %+v",
				workers, par.Stats(), *baseline)
		}
		// The result-shaped counters must agree with sequential Mine exactly:
		// every distinct constraint-satisfying group is either kept or
		// rejected as uninteresting exactly once in both decompositions.
		if par.Stats().GroupsEmitted != seq.Stats().GroupsEmitted {
			t.Fatalf("workers=%d: GroupsEmitted %d, sequential %d",
				workers, par.Stats().GroupsEmitted, seq.Stats().GroupsEmitted)
		}
		if par.Stats().GroupsNotInterest != seq.Stats().GroupsNotInterest {
			t.Fatalf("workers=%d: GroupsNotInterest %d, sequential %d",
				workers, par.Stats().GroupsNotInterest, seq.Stats().GroupsNotInterest)
		}
	}
}
