package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/difftest"
)

// The FARMER miner must agree with the brute-force oracles on the shared
// edge-case fixtures: full Mine ≡ MineParallel ≡ IRG-oracle equivalence
// (with lower bounds), MineLowerBounds against the minimal-generator
// oracle, and MineTopK against the rescan oracle. These are the datasets
// random generation hits only rarely — empty, single-row, one-class,
// duplicate rows, a universal column.
func TestEdgeFixturesAgainstOracle(t *testing.T) {
	for _, f := range difftest.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			c := f.Case()
			if err := difftest.CheckMineEquivalence(c); err != nil {
				t.Fatal(err)
			}
			if err := difftest.CheckMineLB(c); err != nil {
				t.Fatal(err)
			}
			if err := difftest.CheckTopK(c, 3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Degenerate inputs must fail soft, not panic: an empty dataset mines no
// groups, and a MinSup above the row count filters everything.
func TestEdgeDegenerateInputs(t *testing.T) {
	for _, f := range difftest.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			res, err := core.Mine(f.D, f.Consequent, core.Options{MinSup: len(f.D.Rows) + 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Groups) != 0 {
				t.Fatalf("MinSup=%d kept %d groups", len(f.D.Rows)+1, len(res.Groups))
			}
		})
	}
}
