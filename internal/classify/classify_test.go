package classify

import (
	"testing"

	"repro/internal/dataset"
)

// A small separable training set: item 0 marks class 0, item 2 marks
// class 1, item 1 is shared noise.
func separable() *dataset.Dataset {
	d, err := dataset.FromItemLists(
		[][]dataset.Item{
			{0, 1}, {0}, {0, 1, 3},
			{1, 2}, {2}, {2, 3},
		},
		[]int{0, 0, 0, 1, 1, 1},
		4, []string{"pos", "neg"})
	if err != nil {
		panic(err)
	}
	return d
}

func TestRuleMatches(t *testing.T) {
	r := Rule{Antecedent: []dataset.Item{0, 3}}
	row := dataset.Row{Items: []dataset.Item{0, 1, 3}}
	if !r.matches(&row) {
		t.Fatal("should match")
	}
	row2 := dataset.Row{Items: []dataset.Item{0, 1}}
	if r.matches(&row2) {
		t.Fatal("should not match")
	}
}

func TestRuleOrdering(t *testing.T) {
	rules := []Rule{
		{Antecedent: []dataset.Item{1}, Confidence: 0.8, SupPos: 5},
		{Antecedent: []dataset.Item{2}, Confidence: 0.9, SupPos: 2},
		{Antecedent: []dataset.Item{3}, Confidence: 0.9, SupPos: 4},
		{Antecedent: []dataset.Item{4, 5}, Confidence: 0.9, SupPos: 4},
	}
	sortRules(rules)
	if rules[0].Antecedent[0] != 3 { // conf .9, sup 4, shortest
		t.Fatalf("rule order wrong: %+v", rules)
	}
	if rules[1].Antecedent[0] != 4 || rules[2].Antecedent[0] != 2 || rules[3].Antecedent[0] != 1 {
		t.Fatalf("rule order wrong: %+v", rules)
	}
}

func TestMajorityClass(t *testing.T) {
	d := separable()
	if got := majorityClass(d, []int{0, 1, 3}, 9); got != 0 {
		t.Fatalf("majority = %d, want 0", got)
	}
	if got := majorityClass(d, nil, 9); got != 9 {
		t.Fatalf("fallback = %d, want 9", got)
	}
	// Tie goes to the lower class index.
	if got := majorityClass(d, []int{0, 3}, 9); got != 0 {
		t.Fatalf("tie = %d, want 0", got)
	}
}

func TestTrainIRGSeparable(t *testing.T) {
	d := separable()
	cls, err := TrainIRG(d, IRGOptions{MinSupFrac: 0.5, MinConf: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if cls.NumGroups() == 0 {
		t.Fatal("no groups kept")
	}
	// Training rows classify correctly.
	for ri := range d.Rows {
		if got := cls.Predict(&d.Rows[ri]); got != d.Rows[ri].Class {
			t.Fatalf("row %d predicted %d, want %d", ri, got, d.Rows[ri].Class)
		}
	}
	// Unseen rows with the marker items classify correctly.
	if cls.Predict(&dataset.Row{Items: []dataset.Item{0, 3}}) != 0 {
		t.Fatal("unseen pos row misclassified")
	}
	if cls.Predict(&dataset.Row{Items: []dataset.Item{1, 2}}) != 1 {
		t.Fatal("unseen neg row misclassified")
	}
}

func TestTrainIRGUpperBoundPolicy(t *testing.T) {
	d := separable()
	cls, err := TrainIRG(d, IRGOptions{MinSupFrac: 0.5, MinConf: 0.8, Match: MatchUpperBound})
	if err != nil {
		t.Fatal(err)
	}
	for ri := range d.Rows {
		if got := cls.Predict(&d.Rows[ri]); got != d.Rows[ri].Class {
			t.Fatalf("row %d predicted %d, want %d", ri, got, d.Rows[ri].Class)
		}
	}
}

func TestTrainIRGValidation(t *testing.T) {
	d := separable()
	if _, err := TrainIRG(d, IRGOptions{MinSupFrac: 2}); err == nil {
		t.Fatal("bad MinSupFrac accepted")
	}
	empty := &dataset.Dataset{ClassNames: []string{"a", "b"}}
	if _, err := TrainIRG(empty, IRGOptions{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	oneClass := &dataset.Dataset{ClassNames: []string{"a"},
		Rows: []dataset.Row{{Items: nil, Class: 0}}}
	if _, err := TrainIRG(oneClass, IRGOptions{}); err == nil {
		t.Fatal("single-class training set accepted")
	}
}

func TestTrainIRGDefaultClass(t *testing.T) {
	// No rule can reach 0.8 confidence: classifier falls back to majority.
	d, err := dataset.FromItemLists(
		[][]dataset.Item{{0}, {0}, {0}, {0}, {0}},
		[]int{0, 1, 1, 1, 0},
		1, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	cls, err := TrainIRG(d, IRGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cls.Predict(&d.Rows[0]); got != 1 {
		t.Fatalf("default prediction = %d, want majority 1", got)
	}
}

func TestPredictExplain(t *testing.T) {
	d := separable()
	irg, err := TrainIRG(d, IRGOptions{MinSupFrac: 0.5, MinConf: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	class, group := irg.PredictExplain(&d.Rows[0])
	if class != 0 || group == nil {
		t.Fatalf("explain = %d, %v", class, group)
	}
	if group.SupPos == 0 {
		t.Fatal("fired group has no support")
	}
	// A row matching nothing falls to the default with a nil group.
	empty := dataset.Row{Items: nil}
	_, g := irg.PredictExplain(&empty)
	if g != nil {
		t.Fatal("default prediction returned a group")
	}

	cba, err := TrainCBA(d, CBAOptions{MinSupFrac: 0.5, MinConf: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	// Some training row must be explained by an actual rule (M1 may route
	// the rest through the default class).
	fired := false
	for ri := range d.Rows {
		if class, rule := cba.PredictExplain(&d.Rows[ri]); rule != nil {
			fired = true
			if class != rule.Class {
				t.Fatal("explained class disagrees with the fired rule")
			}
		}
	}
	if !fired {
		t.Fatal("no CBA prediction was rule-backed")
	}
	if _, r := cba.PredictExplain(&empty); r != nil {
		t.Fatal("CBA default prediction returned a rule")
	}
}

func TestTrainCBASeparable(t *testing.T) {
	d := separable()
	cls, err := TrainCBA(d, CBAOptions{MinSupFrac: 0.5, MinConf: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Rules) == 0 {
		t.Fatal("no rules selected")
	}
	if cls.CandidateRules < len(cls.Rules) {
		t.Fatal("candidate count below selected count")
	}
	for ri := range d.Rows {
		if got := cls.Predict(&d.Rows[ri]); got != d.Rows[ri].Class {
			t.Fatalf("row %d predicted %d, want %d", ri, got, d.Rows[ri].Class)
		}
	}
}

func TestTrainCBAErrorCutoff(t *testing.T) {
	// A dataset where no rule beats the default: M1 should produce an empty
	// rule list with the majority default.
	d, err := dataset.FromItemLists(
		[][]dataset.Item{{0}, {0}, {0}, {0}},
		[]int{0, 1, 1, 1},
		1, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	cls, err := TrainCBA(d, CBAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cls.Default != 1 {
		t.Fatalf("default = %d, want 1", cls.Default)
	}
	if got := cls.Predict(&d.Rows[0]); got != 1 {
		t.Fatalf("prediction = %d, want 1", got)
	}
}

func TestTrainCBAValidation(t *testing.T) {
	if _, err := TrainCBA(separable(), CBAOptions{MinSupFrac: -1}); err == nil {
		t.Fatal("bad MinSupFrac accepted")
	}
}
