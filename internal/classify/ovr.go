package classify

import (
	"fmt"

	"repro/internal/dataset"
)

// OVRSVMClassifier handles matrices with more than two classes by training
// one binary linear SVM per class (one-vs-rest) and predicting the class
// with the largest decision margin. For two-class matrices it degenerates
// to a single binary SVM.
type OVRSVMClassifier struct {
	models []*SVMClassifier // one per class, nil entries impossible
}

// TrainOVRSVM fits one linear SVM per class of the matrix.
func TrainOVRSVM(train *dataset.Matrix, opt SVMOptions) (*OVRSVMClassifier, error) {
	if err := train.Validate(); err != nil {
		return nil, err
	}
	k := len(train.ClassNames)
	if k < 2 {
		return nil, fmt.Errorf("classify: OVR SVM needs at least 2 classes, got %d", k)
	}
	out := &OVRSVMClassifier{models: make([]*SVMClassifier, k)}
	for c := 0; c < k; c++ {
		// Binarize: class c versus the rest. The binary trainer maps label
		// index 0 to +1, so remap c to 0.
		bin := &dataset.Matrix{
			ColNames:   train.ColNames,
			ClassNames: []string{train.ClassNames[c], "rest"},
			Labels:     make([]int, len(train.Labels)),
			Values:     train.Values,
		}
		for i, l := range train.Labels {
			if l == c {
				bin.Labels[i] = 0
			} else {
				bin.Labels[i] = 1
			}
		}
		model, err := TrainSVM(bin, opt)
		if err != nil {
			return nil, fmt.Errorf("classify: class %q: %w", train.ClassNames[c], err)
		}
		out.models[c] = model
	}
	return out, nil
}

// Predict returns the class whose one-vs-rest model reports the largest
// margin.
func (c *OVRSVMClassifier) Predict(vals []float64) int {
	best, bestMargin := 0, c.models[0].Margin(vals)
	for i := 1; i < len(c.models); i++ {
		if m := c.models[i].Margin(vals); m > bestMargin {
			best, bestMargin = i, m
		}
	}
	return best
}

// NumClasses returns the number of per-class models.
func (c *OVRSVMClassifier) NumClasses() int { return len(c.models) }
