package classify

import (
	"testing"

	"repro/internal/synth"
)

func TestStratifiedSplit(t *testing.T) {
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	sp, err := StratifiedSplit(labels, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Train) != 5 || len(sp.Test) != 5 {
		t.Fatalf("split sizes %d/%d, want 5/5", len(sp.Train), len(sp.Test))
	}
	// Class ratio roughly preserved: 2 of class 0, 3 of class 1.
	c0 := 0
	for _, ri := range sp.Train {
		if labels[ri] == 0 {
			c0++
		}
	}
	if c0 != 2 {
		t.Fatalf("train has %d class-0 rows, want 2", c0)
	}
	// Train and test partition the rows.
	seen := map[int]bool{}
	for _, ri := range append(append([]int{}, sp.Train...), sp.Test...) {
		if seen[ri] {
			t.Fatalf("row %d appears twice", ri)
		}
		seen[ri] = true
	}
	if len(seen) != len(labels) {
		t.Fatal("split loses rows")
	}
}

func TestStratifiedSplitErrors(t *testing.T) {
	if _, err := StratifiedSplit([]int{0, 1}, 2, 0); err == nil {
		t.Fatal("nTrain 0 accepted")
	}
	if _, err := StratifiedSplit([]int{0, 1}, 2, 2); err == nil {
		t.Fatal("nTrain == n accepted")
	}
	if _, err := StratifiedSplit([]int{0, 5}, 2, 1); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestStratifiedSplitExtremeImbalance(t *testing.T) {
	labels := make([]int, 100)
	labels[0] = 1 // single minority row
	sp, err := StratifiedSplit(labels, 2, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Train) != 80 {
		t.Fatalf("train size = %d, want 80", len(sp.Train))
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{0, 1, 1}, []int{0, 1, 0}); got < 0.66 || got > 0.67 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestAccuracyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Accuracy([]int{0}, []int{0, 1})
}

// The full Table-2 protocol on a small synthetic dataset: all three
// classifiers must comfortably beat chance on informative data.
func TestFullProtocolOnSynthData(t *testing.T) {
	spec := synth.Spec{
		Name: "proto", Rows: 60, Cols: 150, Class1Rows: 28,
		ClassNames:  [2]string{"tumor", "normal"},
		Informative: 24, Effect: 2.2, FlipProb: 0.08,
		Modules: 4, ModuleSize: 6, Quantize: 0.8, Seed: 17,
	}
	m, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := StratifiedSplit(m.Labels, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	chance := 0.6 // majority class is ~53%; demand clearly better

	irg, err := EvaluateIRG(m, sp, IRGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if irg < chance {
		t.Errorf("IRG accuracy %v below %v", irg, chance)
	}
	cba, err := EvaluateCBA(m, sp, CBAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cba < chance {
		t.Errorf("CBA accuracy %v below %v", cba, chance)
	}
	svm, err := EvaluateSVM(m, sp, SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if svm < chance {
		t.Errorf("SVM accuracy %v below %v", svm, chance)
	}
	t.Logf("IRG=%.3f CBA=%.3f SVM=%.3f", irg, cba, svm)
}

func TestRulePipelineAlignment(t *testing.T) {
	spec := synth.Spec{
		Name: "pipe", Rows: 40, Cols: 60, Class1Rows: 20,
		ClassNames:  [2]string{"a", "b"},
		Informative: 12, Effect: 2.5, FlipProb: 0.05, Seed: 3,
	}
	m, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := StratifiedSplit(m.Labels, 2, 28)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := RulePipeline(m, sp)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumItems != test.NumItems {
		t.Fatal("train/test item vocabularies differ")
	}
	if train.NumRows() != 28 || test.NumRows() != 12 {
		t.Fatalf("pipeline sizes %d/%d", train.NumRows(), test.NumRows())
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(); err != nil {
		t.Fatal(err)
	}
}
