// Package classify implements the three classifiers of the paper's Table 2:
//
//   - the IRG classifier — interesting rule groups mined by FARMER, ranked
//     and coverage-pruned CBA-style, matching test rows through the groups'
//     lower bounds;
//   - CBA (Liu, Hsu, Ma; KDD 1998) — the CBA-CB M1 classifier builder fed
//     with the individual rules expanded from FARMER's upper and lower
//     bounds (exactly how the paper worked around CBA's own rule miner not
//     finishing);
//   - a linear soft-margin SVM trained by dual coordinate descent, standing
//     in for SVM-light with default settings.
//
// The evaluation helpers reproduce the paper's train/test protocol.
package classify

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// MatchPolicy selects how a rule group matches a row.
type MatchPolicy int

const (
	// MatchLowerBounds matches a row that contains ANY lower bound of the
	// group — the group's most general member rules. This is the default:
	// general rules are what CBA-style classifiers favour.
	MatchLowerBounds MatchPolicy = iota
	// MatchUpperBound matches only rows containing the full upper bound.
	MatchUpperBound
)

// Rule is a single classification rule A → class with its training stats.
type Rule struct {
	Antecedent []dataset.Item
	Class      int
	SupPos     int // training rows matching antecedent with the rule class
	SupNeg     int // training rows matching antecedent with other classes
	Confidence float64
}

// matches reports whether the row contains the rule's antecedent.
func (r *Rule) matches(row *dataset.Row) bool {
	for _, it := range r.Antecedent {
		if !row.HasItem(it) {
			return false
		}
	}
	return true
}

// ruleBetter orders rules by confidence desc, support desc, antecedent
// length asc (general first), then antecedent lexicographically for
// determinism — the CBA precedence order.
func ruleBetter(a, b *Rule) bool {
	if a.Confidence != b.Confidence {
		return a.Confidence > b.Confidence
	}
	if a.SupPos != b.SupPos {
		return a.SupPos > b.SupPos
	}
	if len(a.Antecedent) != len(b.Antecedent) {
		return len(a.Antecedent) < len(b.Antecedent)
	}
	for i := range a.Antecedent {
		if a.Antecedent[i] != b.Antecedent[i] {
			return a.Antecedent[i] < b.Antecedent[i]
		}
	}
	return a.Class < b.Class
}

func sortRules(rules []Rule) {
	sort.SliceStable(rules, func(i, j int) bool { return ruleBetter(&rules[i], &rules[j]) })
}

// majorityClass returns the most common class among the given rows (ties to
// the lower class index); fallback is returned for an empty slice.
func majorityClass(d *dataset.Dataset, rows []int, fallback int) int {
	if len(rows) == 0 {
		return fallback
	}
	counts := make([]int, d.NumClasses())
	for _, ri := range rows {
		counts[d.Rows[ri].Class]++
	}
	best := 0
	for c := 1; c < len(counts); c++ {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return best
}

func validateTrainingData(d *dataset.Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if len(d.Rows) == 0 {
		return fmt.Errorf("classify: empty training set")
	}
	if d.NumClasses() < 2 {
		return fmt.Errorf("classify: need at least 2 classes, got %d", d.NumClasses())
	}
	return nil
}
