package classify

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/discretize"
)

// Split is a train/test partition by row index.
type Split struct {
	Train []int
	Test  []int
}

// StratifiedSplit deterministically partitions n rows into nTrain training
// rows and the rest test, preserving each class's proportion: rows of each
// class are taken in order, with every class contributing ⌈/⌉ its share.
// This mirrors the paper's fixed train/test sizes (Table 2).
func StratifiedSplit(labels []int, numClasses, nTrain int) (Split, error) {
	n := len(labels)
	if nTrain <= 0 || nTrain >= n {
		return Split{}, fmt.Errorf("classify: nTrain %d outside (0,%d)", nTrain, n)
	}
	perClass := make([][]int, numClasses)
	for ri, l := range labels {
		if l < 0 || l >= numClasses {
			return Split{}, fmt.Errorf("classify: label %d outside [0,%d)", l, numClasses)
		}
		perClass[l] = append(perClass[l], ri)
	}
	var sp Split
	taken := 0
	for c, rows := range perClass {
		want := (nTrain*len(rows) + n/2) / n // proportional share, rounded
		if c == numClasses-1 {
			want = nTrain - taken // absorb rounding in the last class
		}
		if want < 0 {
			want = 0
		}
		if want > len(rows) {
			want = len(rows)
		}
		taken += want
		sp.Train = append(sp.Train, rows[:want]...)
		sp.Test = append(sp.Test, rows[want:]...)
	}
	// If rounding starved the target (possible with extreme imbalance),
	// move test rows into train until the size matches.
	for len(sp.Train) < nTrain && len(sp.Test) > 0 {
		sp.Train = append(sp.Train, sp.Test[0])
		sp.Test = sp.Test[1:]
	}
	return sp, nil
}

// SelectRows returns the sub-dataset with the given rows, in order.
func SelectRows(d *dataset.Dataset, rows []int) *dataset.Dataset {
	out := &dataset.Dataset{
		NumItems:   d.NumItems,
		ItemNames:  d.ItemNames,
		ClassNames: d.ClassNames,
	}
	for _, ri := range rows {
		out.Rows = append(out.Rows, d.Rows[ri])
	}
	return out
}

// Accuracy returns the fraction of predictions matching labels.
func Accuracy(preds, labels []int) float64 {
	if len(preds) != len(labels) {
		panic("classify: prediction/label length mismatch")
	}
	if len(preds) == 0 {
		return 0
	}
	ok := 0
	for i := range preds {
		if preds[i] == labels[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(preds))
}

// RulePipeline discretizes the split with entropy-MDL fitted on the
// training rows only (the paper's protocol for the rule-based classifiers)
// and returns the categorical train and test datasets.
func RulePipeline(m *dataset.Matrix, sp Split) (train, test *dataset.Dataset, err error) {
	trainM := m.SelectRows(sp.Train)
	disc, err := discretize.EntropyMDL(trainM)
	if err != nil {
		return nil, nil, err
	}
	if disc.NumItems() == 0 {
		return nil, nil, fmt.Errorf("classify: entropy discretization kept no columns")
	}
	train, err = disc.Apply(trainM)
	if err != nil {
		return nil, nil, err
	}
	test, err = disc.Apply(m.SelectRows(sp.Test))
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// EvaluateIRG runs the full IRG-classifier protocol on a matrix split and
// returns the test accuracy.
func EvaluateIRG(m *dataset.Matrix, sp Split, opt IRGOptions) (float64, error) {
	train, test, err := RulePipeline(m, sp)
	if err != nil {
		return 0, err
	}
	cls, err := TrainIRG(train, opt)
	if err != nil {
		return 0, err
	}
	preds := make([]int, len(test.Rows))
	labels := make([]int, len(test.Rows))
	for i := range test.Rows {
		preds[i] = cls.Predict(&test.Rows[i])
		labels[i] = test.Rows[i].Class
	}
	return Accuracy(preds, labels), nil
}

// EvaluateCBA runs the full CBA protocol on a matrix split.
func EvaluateCBA(m *dataset.Matrix, sp Split, opt CBAOptions) (float64, error) {
	train, test, err := RulePipeline(m, sp)
	if err != nil {
		return 0, err
	}
	cls, err := TrainCBA(train, opt)
	if err != nil {
		return 0, err
	}
	preds := make([]int, len(test.Rows))
	labels := make([]int, len(test.Rows))
	for i := range test.Rows {
		preds[i] = cls.Predict(&test.Rows[i])
		labels[i] = test.Rows[i].Class
	}
	return Accuracy(preds, labels), nil
}

// EvaluateSVM runs the SVM on the continuous matrix split.
func EvaluateSVM(m *dataset.Matrix, sp Split, opt SVMOptions) (float64, error) {
	cls, err := TrainSVM(m.SelectRows(sp.Train), opt)
	if err != nil {
		return 0, err
	}
	preds := make([]int, len(sp.Test))
	labels := make([]int, len(sp.Test))
	for i, ri := range sp.Test {
		preds[i] = cls.Predict(m.Values[ri])
		labels[i] = m.Labels[ri]
	}
	return Accuracy(preds, labels), nil
}
