package classify

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func linearlySeparable(n int, seed int64) *dataset.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := &dataset.Matrix{
		ColNames:   []string{"g1", "g2", "g3"},
		ClassNames: []string{"pos", "neg"},
	}
	for i := 0; i < n; i++ {
		label := i % 2
		shift := 3.0
		if label == 1 {
			shift = -3.0
		}
		m.Labels = append(m.Labels, label)
		m.Values = append(m.Values, []float64{
			shift + rng.NormFloat64()*0.5,
			rng.NormFloat64(),
			shift*0.5 + rng.NormFloat64()*0.5,
		})
	}
	return m
}

func TestSVMSeparable(t *testing.T) {
	m := linearlySeparable(40, 7)
	cls, err := TrainSVM(m, SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Values {
		if got := cls.Predict(m.Values[i]); got != m.Labels[i] {
			t.Fatalf("row %d predicted %d, want %d", i, got, m.Labels[i])
		}
	}
	// Margins have the right sign convention.
	if cls.Margin(m.Values[0]) <= 0 && m.Labels[0] == 0 {
		t.Fatal("margin sign wrong for class 0")
	}
}

func TestSVMGeneralizes(t *testing.T) {
	train := linearlySeparable(30, 11)
	test := linearlySeparable(30, 99)
	cls, err := TrainSVM(train, SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]int, len(test.Values))
	for i := range test.Values {
		preds[i] = cls.Predict(test.Values[i])
	}
	if acc := Accuracy(preds, test.Labels); acc < 0.95 {
		t.Fatalf("test accuracy %v on separable data", acc)
	}
}

func TestSVMDeterministic(t *testing.T) {
	m := linearlySeparable(20, 3)
	a, err := TrainSVM(m, SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainSVM(m, SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.w {
		if a.w[i] != b.w[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestSVMConstantColumn(t *testing.T) {
	m := &dataset.Matrix{
		ColNames:   []string{"g1", "g2"},
		ClassNames: []string{"a", "b"},
		Labels:     []int{0, 1, 0, 1},
		Values:     [][]float64{{5, 1}, {5, -1}, {5, 2}, {5, -2}},
	}
	cls, err := TrainSVM(m, SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Values {
		if cls.Predict(m.Values[i]) != m.Labels[i] {
			t.Fatal("constant column broke training")
		}
	}
}

func TestSVMValidation(t *testing.T) {
	if _, err := TrainSVM(&dataset.Matrix{ClassNames: []string{"a", "b"}}, SVMOptions{}); err == nil {
		t.Fatal("empty matrix accepted")
	}
	bad := &dataset.Matrix{
		ColNames:   []string{"g"},
		ClassNames: []string{"a", "b", "c"},
		Labels:     []int{0},
		Values:     [][]float64{{1}},
	}
	if _, err := TrainSVM(bad, SVMOptions{}); err == nil {
		t.Fatal("3-class matrix accepted")
	}
}

// On synthetic microarray data the SVM must beat random guessing clearly.
func TestSVMOnSynthData(t *testing.T) {
	spec := synth.Spec{
		Name: "svmtest", Rows: 60, Cols: 120, Class1Rows: 30,
		ClassNames:  [2]string{"pos", "neg"},
		Informative: 20, Effect: 2.0, FlipProb: 0.1, Seed: 5,
	}
	m, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := StratifiedSplit(m.Labels, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := EvaluateSVM(m, sp, SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Fatalf("SVM accuracy %v on informative synthetic data", acc)
	}
}
