package classify

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// threeClassMatrix builds three Gaussian blobs in 2D.
func threeClassMatrix(n int, seed int64) *dataset.Matrix {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{4, 0}, {-4, 0}, {0, 4}}
	m := &dataset.Matrix{
		ColNames:   []string{"x", "y"},
		ClassNames: []string{"a", "b", "c"},
	}
	for i := 0; i < n; i++ {
		cl := i % 3
		m.Labels = append(m.Labels, cl)
		m.Values = append(m.Values, []float64{
			centers[cl][0] + rng.NormFloat64()*0.5,
			centers[cl][1] + rng.NormFloat64()*0.5,
		})
	}
	return m
}

func TestOVRSVMThreeClasses(t *testing.T) {
	train := threeClassMatrix(60, 1)
	test := threeClassMatrix(30, 2)
	cls, err := TrainOVRSVM(train, SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cls.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d", cls.NumClasses())
	}
	preds := make([]int, len(test.Values))
	for i := range test.Values {
		preds[i] = cls.Predict(test.Values[i])
	}
	if acc := Accuracy(preds, test.Labels); acc < 0.95 {
		t.Fatalf("3-class accuracy %v on separable blobs", acc)
	}
}

func TestOVRSVMBinaryMatchesMargins(t *testing.T) {
	m := linearlySeparable(30, 5)
	ovr, err := TrainOVRSVM(m, SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := TrainSVM(m, SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Values {
		if ovr.Predict(m.Values[i]) != bin.Predict(m.Values[i]) {
			t.Fatalf("row %d: OVR and binary disagree on separable data", i)
		}
	}
}

func TestOVRSVMValidation(t *testing.T) {
	one := &dataset.Matrix{
		ColNames:   []string{"g"},
		ClassNames: []string{"only"},
		Labels:     []int{0},
		Values:     [][]float64{{1}},
	}
	if _, err := TrainOVRSVM(one, SVMOptions{}); err == nil {
		t.Fatal("single-class matrix accepted")
	}
}

// FARMER itself is class-count-agnostic (consequent vs rest); verify the
// whole rule pipeline works on a 3-class categorical dataset.
func TestRuleMiningThreeClasses(t *testing.T) {
	d, err := dataset.FromItemLists(
		[][]dataset.Item{
			{0, 3}, {0, 4}, {0, 3, 4}, // class a marked by item 0
			{1, 3}, {1, 4}, {1, 3, 4}, // class b marked by item 1
			{2, 3}, {2, 4}, {2, 3, 4}, // class c marked by item 2
		},
		[]int{0, 0, 0, 1, 1, 1, 2, 2, 2},
		5, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	cls, err := TrainIRG(d, IRGOptions{MinSupFrac: 0.6, MinConf: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for ri := range d.Rows {
		if got := cls.Predict(&d.Rows[ri]); got != d.Rows[ri].Class {
			t.Fatalf("row %d predicted %d, want %d", ri, got, d.Rows[ri].Class)
		}
	}
	cba, err := TrainCBA(d, CBAOptions{MinSupFrac: 0.6, MinConf: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for ri := range d.Rows {
		if got := cba.Predict(&d.Rows[ri]); got != d.Rows[ri].Class {
			t.Fatalf("CBA row %d predicted %d, want %d", ri, got, d.Rows[ri].Class)
		}
	}
}
