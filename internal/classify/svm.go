package classify

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// SVMOptions configures the linear SVM. The defaults correspond to the
// "default settings" the paper used with SVM-light: C = 1 with a linear
// kernel on standardized expression values.
type SVMOptions struct {
	// C is the soft-margin penalty. Default 1.
	C float64
	// Epochs bounds the dual coordinate-descent passes. Default 200.
	Epochs int
	// Tol stops early when the projected-gradient span falls below it.
	// Default 1e-4.
	Tol float64
	// Seed drives the per-epoch coordinate shuffle. Default 1.
	Seed int64
}

func (o *SVMOptions) setDefaults() {
	if o.C == 0 {
		o.C = 1
	}
	if o.Epochs == 0 {
		o.Epochs = 200
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// SVMClassifier is a binary linear SVM over continuous gene-expression
// vectors. Class 0 of the training matrix maps to label +1.
type SVMClassifier struct {
	w    []float64 // weight vector, one per column plus bias
	mean []float64 // per-column standardization
	std  []float64
	// Iters is the number of epochs run before convergence (diagnostics).
	Iters int
}

// TrainSVM fits a binary L1-loss linear SVM by dual coordinate descent
// (Hsieh et al., ICML 2008 — the algorithm behind liblinear) on the
// standardized matrix.
func TrainSVM(train *dataset.Matrix, opt SVMOptions) (*SVMClassifier, error) {
	opt.setDefaults()
	if err := train.Validate(); err != nil {
		return nil, err
	}
	n, cols := train.NumRows(), train.NumCols()
	if n == 0 || cols == 0 {
		return nil, fmt.Errorf("classify: empty SVM training matrix")
	}
	if len(train.ClassNames) != 2 {
		return nil, fmt.Errorf("classify: SVM requires exactly 2 classes, got %d", len(train.ClassNames))
	}

	cls := &SVMClassifier{
		w:    make([]float64, cols+1), // +1 for the bias feature
		mean: make([]float64, cols),
		std:  make([]float64, cols),
	}
	for c := 0; c < cols; c++ {
		sum, sumSq := 0.0, 0.0
		for r := 0; r < n; r++ {
			v := train.Values[r][c]
			sum += v
			sumSq += v * v
		}
		cls.mean[c] = sum / float64(n)
		variance := sumSq/float64(n) - cls.mean[c]*cls.mean[c]
		if variance < 1e-12 {
			cls.std[c] = 1
		} else {
			cls.std[c] = math.Sqrt(variance)
		}
	}

	x := make([][]float64, n)
	y := make([]float64, n)
	qii := make([]float64, n)
	for r := 0; r < n; r++ {
		x[r] = cls.featurize(train.Values[r])
		if train.Labels[r] == 0 {
			y[r] = 1
		} else {
			y[r] = -1
		}
		for _, v := range x[r] {
			qii[r] += v * v
		}
	}

	alpha := make([]float64, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		cls.Iters = epoch + 1
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		maxPG := 0.0
		for _, i := range order {
			g := y[i]*dot(cls.w, x[i]) - 1
			pg := g
			if alpha[i] <= 0 && g > 0 {
				pg = 0
			}
			if alpha[i] >= opt.C && g < 0 {
				pg = 0
			}
			if math.Abs(pg) > maxPG {
				maxPG = math.Abs(pg)
			}
			if pg == 0 || qii[i] == 0 {
				continue
			}
			old := alpha[i]
			alpha[i] = math.Min(math.Max(old-g/qii[i], 0), opt.C)
			delta := (alpha[i] - old) * y[i]
			for k, v := range x[i] {
				cls.w[k] += delta * v
			}
		}
		if maxPG < opt.Tol {
			break
		}
	}
	return cls, nil
}

// featurize standardizes a value vector and appends the bias feature.
func (c *SVMClassifier) featurize(vals []float64) []float64 {
	out := make([]float64, len(vals)+1)
	for i, v := range vals {
		out[i] = (v - c.mean[i]) / c.std[i]
	}
	out[len(vals)] = 1
	return out
}

// Predict returns the class index (0 or 1) for a value vector.
func (c *SVMClassifier) Predict(vals []float64) int {
	if dot(c.w, c.featurize(vals)) >= 0 {
		return 0
	}
	return 1
}

// Margin returns the signed decision value (positive means class 0).
func (c *SVMClassifier) Margin(vals []float64) float64 {
	return dot(c.w, c.featurize(vals))
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
