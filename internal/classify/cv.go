package classify

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/dataset"
)

// KFold partitions rows into k stratified folds (each class's rows are
// shuffled with the seed and dealt round-robin) and returns one Split per
// fold, with that fold as the test set.
func KFold(labels []int, numClasses, k int, seed int64) ([]Split, error) {
	n := len(labels)
	if k < 2 || k > n {
		return nil, fmt.Errorf("classify: k %d outside [2,%d]", k, n)
	}
	perClass := make([][]int, numClasses)
	for ri, l := range labels {
		if l < 0 || l >= numClasses {
			return nil, fmt.Errorf("classify: label %d outside [0,%d)", l, numClasses)
		}
		perClass[l] = append(perClass[l], ri)
	}
	rng := rand.New(rand.NewSource(seed))
	folds := make([][]int, k)
	for _, rows := range perClass {
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		for i, ri := range rows {
			folds[i%k] = append(folds[i%k], ri)
		}
	}
	splits := make([]Split, k)
	for f := 0; f < k; f++ {
		for g := 0; g < k; g++ {
			if g == f {
				splits[f].Test = append(splits[f].Test, folds[g]...)
			} else {
				splits[f].Train = append(splits[f].Train, folds[g]...)
			}
		}
		if len(splits[f].Test) == 0 {
			return nil, fmt.Errorf("classify: fold %d empty (k too large for %d rows)", f, n)
		}
	}
	return splits, nil
}

// CVResult summarizes a cross-validation run.
type CVResult struct {
	FoldAccuracies []float64
	Mean           float64
	StdDev         float64
}

// CrossValidate evaluates a classifier protocol over k stratified folds.
// evaluate receives the matrix and one split and returns the fold's test
// accuracy — pass EvaluateIRG/EvaluateCBA/EvaluateSVM closures.
func CrossValidate(m *dataset.Matrix, k int, seed int64,
	evaluate func(*dataset.Matrix, Split) (float64, error)) (*CVResult, error) {
	splits, err := KFold(m.Labels, len(m.ClassNames), k, seed)
	if err != nil {
		return nil, err
	}
	res := &CVResult{}
	for f, sp := range splits {
		acc, err := evaluate(m, sp)
		if err != nil {
			return nil, fmt.Errorf("classify: fold %d: %w", f, err)
		}
		res.FoldAccuracies = append(res.FoldAccuracies, acc)
		res.Mean += acc
	}
	res.Mean /= float64(k)
	for _, a := range res.FoldAccuracies {
		res.StdDev += (a - res.Mean) * (a - res.Mean)
	}
	res.StdDev = math.Sqrt(res.StdDev / float64(k))
	return res, nil
}

// Confusion is a square confusion matrix: Counts[actual][predicted].
type Confusion struct {
	Counts     [][]int
	ClassNames []string
}

// NewConfusion tallies predictions against labels.
func NewConfusion(preds, labels []int, classNames []string) (*Confusion, error) {
	if len(preds) != len(labels) {
		return nil, fmt.Errorf("classify: %d predictions for %d labels", len(preds), len(labels))
	}
	k := len(classNames)
	c := &Confusion{Counts: make([][]int, k), ClassNames: classNames}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	for i := range preds {
		if labels[i] < 0 || labels[i] >= k || preds[i] < 0 || preds[i] >= k {
			return nil, fmt.Errorf("classify: class index outside [0,%d)", k)
		}
		c.Counts[labels[i]][preds[i]]++
	}
	return c, nil
}

// Accuracy returns the trace fraction.
func (c *Confusion) Accuracy() float64 {
	diag, total := 0, 0
	for i, row := range c.Counts {
		for j, v := range row {
			total += v
			if i == j {
				diag += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// Recall returns the per-class recall (sensitivity); NaN-free: classes with
// no rows report 0.
func (c *Confusion) Recall(class int) float64 {
	total := 0
	for _, v := range c.Counts[class] {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(total)
}

// Precision returns the per-class precision; classes never predicted
// report 0.
func (c *Confusion) Precision(class int) float64 {
	total := 0
	for i := range c.Counts {
		total += c.Counts[i][class]
	}
	if total == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(total)
}

// String renders the matrix with class names.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "actual\\pred")
	for _, n := range c.ClassNames {
		fmt.Fprintf(&b, " %10s", n)
	}
	b.WriteByte('\n')
	for i, row := range c.Counts {
		fmt.Fprintf(&b, "%-12s", c.ClassNames[i])
		for _, v := range row {
			fmt.Fprintf(&b, " %10d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
