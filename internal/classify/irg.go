package classify

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
)

// IRGOptions configures IRG-classifier training. The defaults mirror the
// paper's §4.2 settings: per-class minimum support 0.7·|class| and minimum
// confidence 0.8.
type IRGOptions struct {
	// MinSupFrac is the per-class minimum support as a fraction of the
	// class's training rows. Default 0.7.
	MinSupFrac float64
	// MinConf is the minimum confidence. Default 0.8.
	MinConf float64
	// MinChi is the optional chi-square constraint (0 disables).
	MinChi float64
	// Match selects lower-bound (default) or upper-bound matching.
	Match MatchPolicy
	// MaxLowerBounds caps MineLB expansion per group (0 = unlimited).
	MaxLowerBounds int
}

func (o *IRGOptions) setDefaults() {
	if o.MinSupFrac == 0 {
		o.MinSupFrac = 0.7
	}
	if o.MinConf == 0 {
		o.MinConf = 0.8
	}
}

// IRGClassifier predicts with a ranked, coverage-pruned list of interesting
// rule groups (the "naive classification approach" of the FARMER authors:
// rank upper bounds, apply database-coverage pruning, predict with the
// first covering group).
type IRGClassifier struct {
	groups  []scoredGroup
	policy  MatchPolicy
	Default int
	// Mined counts the rule groups before coverage pruning (diagnostics).
	Mined int
}

type scoredGroup struct {
	group core.RuleGroup
	class int
}

// TrainIRG mines interesting rule groups per class and builds the
// classifier.
func TrainIRG(train *dataset.Dataset, opt IRGOptions) (*IRGClassifier, error) {
	opt.setDefaults()
	if err := validateTrainingData(train); err != nil {
		return nil, err
	}
	if opt.MinSupFrac < 0 || opt.MinSupFrac > 1 {
		return nil, fmt.Errorf("classify: MinSupFrac %v outside [0,1]", opt.MinSupFrac)
	}

	var all []scoredGroup
	for c := 0; c < train.NumClasses(); c++ {
		classRows := train.ClassCount(c)
		if classRows == 0 {
			continue
		}
		minsup := int(opt.MinSupFrac * float64(classRows))
		if minsup < 1 {
			minsup = 1
		}
		res, err := core.Mine(train, c, core.Options{
			MinSup:             minsup,
			MinConf:            opt.MinConf,
			MinChi:             opt.MinChi,
			ComputeLowerBounds: true,
			MaxLowerBounds:     opt.MaxLowerBounds,
		})
		if err != nil {
			return nil, err
		}
		for _, g := range res.Groups {
			all = append(all, scoredGroup{group: g, class: c})
		}
	}

	// Rank groups: confidence desc, support desc, shorter upper bound.
	sort.SliceStable(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.group.Confidence != b.group.Confidence {
			return a.group.Confidence > b.group.Confidence
		}
		if a.group.SupPos != b.group.SupPos {
			return a.group.SupPos > b.group.SupPos
		}
		if len(a.group.Antecedent) != len(b.group.Antecedent) {
			return len(a.group.Antecedent) < len(b.group.Antecedent)
		}
		return lessItems(a.group.Antecedent, b.group.Antecedent)
	})

	cls := &IRGClassifier{policy: opt.Match, Mined: len(all)}

	// Database-coverage selection with the CBA-style error cutoff ("our
	// IRG classifier is similar to CBA but uses IRGs instead of all
	// rules"): walk groups in rank order, keep a group iff it correctly
	// covers a remaining row, retire every row it covers, and truncate the
	// list where (selected prefix + default class) minimizes training
	// error.
	covered := make([]bool, len(train.Rows))
	remaining := len(train.Rows)
	type step struct {
		sg       scoredGroup
		def      int
		totalErr int
	}
	var steps []step
	prefixErr := 0
	for _, sg := range all {
		if remaining == 0 {
			break
		}
		useful := false
		for ri := range train.Rows {
			if covered[ri] || train.Rows[ri].Class != sg.class {
				continue
			}
			if cls.groupMatches(&sg.group, &train.Rows[ri]) {
				useful = true
				break
			}
		}
		if !useful {
			continue
		}
		for ri := range train.Rows {
			if !covered[ri] && cls.groupMatches(&sg.group, &train.Rows[ri]) {
				covered[ri] = true
				remaining--
				if train.Rows[ri].Class != sg.class {
					prefixErr++
				}
			}
		}
		var rest []int
		for ri := range train.Rows {
			if !covered[ri] {
				rest = append(rest, ri)
			}
		}
		def := majorityClass(train, rest, overallMajority(train))
		defErr := 0
		for _, ri := range rest {
			if train.Rows[ri].Class != def {
				defErr++
			}
		}
		steps = append(steps, step{sg: sg, def: def, totalErr: prefixErr + defErr})
	}

	// Cut at the minimum total error; fall back to default-only if the
	// empty classifier is at least as good.
	def := overallMajority(train)
	bestErr := 0
	for ri := range train.Rows {
		if train.Rows[ri].Class != def {
			bestErr++
		}
	}
	bestIdx := -1
	for i, s := range steps {
		if s.totalErr < bestErr {
			bestIdx, bestErr = i, s.totalErr
		}
	}
	if bestIdx < 0 {
		cls.Default = def
		return cls, nil
	}
	for i := 0; i <= bestIdx; i++ {
		cls.groups = append(cls.groups, steps[i].sg)
	}
	cls.Default = steps[bestIdx].def
	return cls, nil
}

func overallMajority(d *dataset.Dataset) int {
	rows := make([]int, len(d.Rows))
	for i := range rows {
		rows[i] = i
	}
	return majorityClass(d, rows, 0)
}

func (c *IRGClassifier) groupMatches(g *core.RuleGroup, row *dataset.Row) bool {
	if c.policy == MatchUpperBound {
		return g.Matches(row)
	}
	return g.MatchesAnyLowerBound(row)
}

// Predict returns the class of the highest-ranked group covering the row,
// or the default class.
func (c *IRGClassifier) Predict(row *dataset.Row) int {
	class, _ := c.PredictExplain(row)
	return class
}

// PredictExplain additionally returns the rule group that fired (nil when
// the default class was used).
func (c *IRGClassifier) PredictExplain(row *dataset.Row) (int, *core.RuleGroup) {
	for i := range c.groups {
		if c.groupMatches(&c.groups[i].group, row) {
			return c.groups[i].class, &c.groups[i].group
		}
	}
	return c.Default, nil
}

// NumGroups returns the number of groups kept after coverage pruning.
func (c *IRGClassifier) NumGroups() int { return len(c.groups) }

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
