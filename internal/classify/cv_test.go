package classify

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func TestKFoldPartitions(t *testing.T) {
	labels := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	splits, err := KFold(labels, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 3 {
		t.Fatalf("%d splits", len(splits))
	}
	seenTest := map[int]int{}
	for _, sp := range splits {
		if len(sp.Train)+len(sp.Test) != len(labels) {
			t.Fatal("fold does not cover all rows")
		}
		inTrain := map[int]bool{}
		for _, ri := range sp.Train {
			inTrain[ri] = true
		}
		for _, ri := range sp.Test {
			if inTrain[ri] {
				t.Fatalf("row %d in both train and test", ri)
			}
			seenTest[ri]++
		}
		// Stratification: each fold's test set has both classes.
		c0 := 0
		for _, ri := range sp.Test {
			if labels[ri] == 0 {
				c0++
			}
		}
		if c0 == 0 || c0 == len(sp.Test) {
			t.Fatalf("fold not stratified: %d of %d class 0", c0, len(sp.Test))
		}
	}
	// Every row appears in exactly one test fold.
	for ri := range labels {
		if seenTest[ri] != 1 {
			t.Fatalf("row %d in %d test folds", ri, seenTest[ri])
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, err := KFold([]int{0, 1}, 2, 1, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := KFold([]int{0, 1}, 2, 3, 1); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := KFold([]int{0, 9}, 2, 2, 1); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestKFoldDeterministicPerSeed(t *testing.T) {
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	a, _ := KFold(labels, 2, 4, 7)
	b, _ := KFold(labels, 2, 4, 7)
	for f := range a {
		if len(a[f].Test) != len(b[f].Test) {
			t.Fatal("same seed differs")
		}
		for i := range a[f].Test {
			if a[f].Test[i] != b[f].Test[i] {
				t.Fatal("same seed differs")
			}
		}
	}
}

func TestCrossValidateSVM(t *testing.T) {
	spec := synth.Spec{
		Name: "cv", Rows: 40, Cols: 30, Class1Rows: 20,
		ClassNames:  [2]string{"a", "b"},
		Informative: 10, Effect: 2.5, FlipProb: 0.05, Seed: 12,
	}
	m, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrossValidate(m, 4, 3, func(m *dataset.Matrix, sp Split) (float64, error) {
		return EvaluateSVM(m, sp, SVMOptions{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracies) != 4 {
		t.Fatalf("%d folds", len(res.FoldAccuracies))
	}
	if res.Mean < 0.8 {
		t.Fatalf("CV mean %v on separable data", res.Mean)
	}
	if res.StdDev < 0 || math.IsNaN(res.StdDev) {
		t.Fatalf("bad stddev %v", res.StdDev)
	}
}

func TestCrossValidatePropagatesErrors(t *testing.T) {
	m := &dataset.Matrix{
		ColNames:   []string{"g"},
		ClassNames: []string{"a", "b"},
		Labels:     []int{0, 1, 0, 1},
		Values:     [][]float64{{1}, {2}, {3}, {4}},
	}
	_, err := CrossValidate(m, 2, 1, func(*dataset.Matrix, Split) (float64, error) {
		return 0, errBoom
	})
	if err == nil {
		t.Fatal("fold error swallowed")
	}
}

var errBoom = errFake("boom")

type errFake string

func (e errFake) Error() string { return string(e) }

func TestConfusionMatrix(t *testing.T) {
	preds := []int{0, 0, 1, 1, 1, 0}
	labels := []int{0, 1, 1, 1, 0, 0}
	c, err := NewConfusion(preds, labels, []string{"pos", "neg"})
	if err != nil {
		t.Fatal(err)
	}
	// actual 0: predicted [0,1] = 2,1 ; actual 1: predicted [0,1] = 1,2
	if c.Counts[0][0] != 2 || c.Counts[0][1] != 1 || c.Counts[1][0] != 1 || c.Counts[1][1] != 2 {
		t.Fatalf("counts = %v", c.Counts)
	}
	if math.Abs(c.Accuracy()-4.0/6) > 1e-12 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if math.Abs(c.Recall(0)-2.0/3) > 1e-12 || math.Abs(c.Precision(1)-2.0/3) > 1e-12 {
		t.Fatalf("recall/precision wrong: %v %v", c.Recall(0), c.Precision(1))
	}
	if s := c.String(); !strings.Contains(s, "pos") || !strings.Contains(s, "neg") {
		t.Fatalf("String = %q", s)
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := NewConfusion([]int{0}, []int{0, 1}, []string{"a", "b"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewConfusion([]int{5}, []int{0}, []string{"a", "b"}); err == nil {
		t.Fatal("out-of-range class accepted")
	}
}

func TestConfusionDegenerate(t *testing.T) {
	c, err := NewConfusion(nil, nil, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Accuracy() != 0 || c.Recall(0) != 0 || c.Precision(1) != 0 {
		t.Fatal("empty confusion should report zeros")
	}
}
