package classify

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// CBAOptions configures CBA training. Defaults follow the paper's §4.2:
// per-class minimum support 0.7·|class|, minimum confidence 0.8.
type CBAOptions struct {
	MinSupFrac float64 // default 0.7
	MinConf    float64 // default 0.8
	// MaxLowerBounds caps lower-bound expansion when deriving the rule set
	// from FARMER's groups (0 = unlimited).
	MaxLowerBounds int
}

func (o *CBAOptions) setDefaults() {
	if o.MinSupFrac == 0 {
		o.MinSupFrac = 0.7
	}
	if o.MinConf == 0 {
		o.MinConf = 0.8
	}
}

// CBAClassifier is the CBA-CB (M1) rule-list classifier.
type CBAClassifier struct {
	Rules   []Rule
	Default int
	// CandidateRules counts the rules before the M1 selection.
	CandidateRules int
}

// TrainCBA builds the classifier. Since CBA's own Apriori-style rule miner
// cannot finish on microarray data (the paper ran it for a week), the rule
// set is derived exactly the way the paper did: from the upper and lower
// bounds FARMER produces, expanded into individual rules.
func TrainCBA(train *dataset.Dataset, opt CBAOptions) (*CBAClassifier, error) {
	opt.setDefaults()
	if err := validateTrainingData(train); err != nil {
		return nil, err
	}
	if opt.MinSupFrac < 0 || opt.MinSupFrac > 1 {
		return nil, fmt.Errorf("classify: MinSupFrac %v outside [0,1]", opt.MinSupFrac)
	}

	var rules []Rule
	for c := 0; c < train.NumClasses(); c++ {
		classRows := train.ClassCount(c)
		if classRows == 0 {
			continue
		}
		minsup := int(opt.MinSupFrac * float64(classRows))
		if minsup < 1 {
			minsup = 1
		}
		res, err := core.Mine(train, c, core.Options{
			MinSup:             minsup,
			MinConf:            opt.MinConf,
			ComputeLowerBounds: true,
			MaxLowerBounds:     opt.MaxLowerBounds,
		})
		if err != nil {
			return nil, err
		}
		for _, g := range res.Groups {
			// Every bound of the group is a rule with the group's stats.
			rules = append(rules, Rule{
				Antecedent: g.Antecedent, Class: c,
				SupPos: g.SupPos, SupNeg: g.SupNeg, Confidence: g.Confidence,
			})
			for _, lb := range g.LowerBounds {
				if len(lb) == len(g.Antecedent) {
					continue // the group is its own lower bound
				}
				rules = append(rules, Rule{
					Antecedent: lb, Class: c,
					SupPos: g.SupPos, SupNeg: g.SupNeg, Confidence: g.Confidence,
				})
			}
		}
	}
	sortRules(rules)

	cls := &CBAClassifier{CandidateRules: len(rules)}

	// CBA-CB M1: walk rules in precedence order; select a rule if it
	// correctly classifies at least one remaining row; remove ALL rows it
	// covers; track the running error of (selected prefix + default class)
	// and cut the list at the global minimum.
	remaining := make(map[int]bool, len(train.Rows))
	for ri := range train.Rows {
		remaining[ri] = true
	}
	type step struct {
		rule     Rule
		def      int
		totalErr int
	}
	var steps []step
	prefixErr := 0
	for _, r := range rules {
		if len(remaining) == 0 {
			break
		}
		correct := false
		for ri := range remaining {
			if train.Rows[ri].Class == r.Class && r.matches(&train.Rows[ri]) {
				correct = true
				break
			}
		}
		if !correct {
			continue
		}
		for ri := range remaining {
			if r.matches(&train.Rows[ri]) {
				if train.Rows[ri].Class != r.Class {
					prefixErr++
				}
				delete(remaining, ri)
			}
		}
		var rest []int
		for ri := range remaining {
			rest = append(rest, ri)
		}
		def := majorityClass(train, rest, majorityAll(train))
		defErr := 0
		for _, ri := range rest {
			if train.Rows[ri].Class != def {
				defErr++
			}
		}
		steps = append(steps, step{rule: r, def: def, totalErr: prefixErr + defErr})
	}

	// Cut at the minimum total error.
	bestIdx, bestErr := -1, len(train.Rows)+1
	for i, s := range steps {
		if s.totalErr < bestErr {
			bestIdx, bestErr = i, s.totalErr
		}
	}
	// Compare against the empty classifier (default class only).
	def := majorityAll(train)
	emptyErr := 0
	for ri := range train.Rows {
		if train.Rows[ri].Class != def {
			emptyErr++
		}
	}
	if bestIdx < 0 || emptyErr <= bestErr {
		cls.Default = def
		return cls, nil
	}
	for i := 0; i <= bestIdx; i++ {
		cls.Rules = append(cls.Rules, steps[i].rule)
	}
	cls.Default = steps[bestIdx].def
	return cls, nil
}

func majorityAll(d *dataset.Dataset) int {
	rows := make([]int, len(d.Rows))
	for i := range rows {
		rows[i] = i
	}
	return majorityClass(d, rows, 0)
}

// Predict returns the class of the first rule covering the row, or the
// default class.
func (c *CBAClassifier) Predict(row *dataset.Row) int {
	class, _ := c.PredictExplain(row)
	return class
}

// PredictExplain additionally returns the rule that fired (nil when the
// default class was used).
func (c *CBAClassifier) PredictExplain(row *dataset.Row) (int, *Rule) {
	for i := range c.Rules {
		if c.Rules[i].matches(row) {
			return c.Rules[i].Class, &c.Rules[i]
		}
	}
	return c.Default, nil
}
