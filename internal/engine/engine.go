// Package engine is the shared mining runtime behind every miner in the
// repository: FARMER's row enumerators (Mine, MineParallel, MineTopK,
// MineLB) and the five baselines (CHARM, CLOSET, ColumnE, CARPENTER,
// COBBLER). It factors out the three pieces the miners used to hand-roll
// independently:
//
//   - Execution control (Exec): a context-cancellation token polled at
//     node-expansion granularity. A cancelled run stops within one node
//     expansion and surfaces ctx.Err() alongside whatever partial
//     statistics were gathered.
//   - Instrumentation (Stats): one counter set with identical semantics
//     across miners — enumeration nodes, per-pruning-strategy cuts
//     (strategies 1–3 of §3.2), emission counts — plus wall-clock phase
//     timings. The counter portion (Counters) is deterministic and
//     comparable; timings are kept separate so differential tests can
//     assert counter equality across runs.
//   - Scratch substrate (Scratch): the epoch-stamped per-row counters and
//     bitset scratch shared by the row-enumeration miners, so per-node
//     work reuses one allocation per run instead of allocating per node.
//
// The streaming contract every miner built on this package follows: a
// group/pattern is delivered to its OnX callback at the moment its
// membership in the result set becomes final (each miner's emission
// decision is final when made; only ColumnE's global interestingness
// fixpoint defers delivery to the finish phase). A callback error aborts
// the run and is returned verbatim; after cancellation no further
// deliveries happen.
package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
)

// ErrBudgetExceeded is returned by EnterNode once a run's node or deadline
// budget (SetBudget) is exhausted. It is distinct from context
// cancellation on purpose: a budget stop is the anytime contract working
// as intended — the caller keeps the best-so-far result as a successful,
// partial answer — while ctx.Err() means the caller no longer wants any
// answer at all.
var ErrBudgetExceeded = errors.New("engine: node or deadline budget exhausted")

// Counters is the deterministic portion of Stats: pure event counts that
// depend only on the dataset, the options, and the task decomposition —
// never on scheduling or wall clock. It is comparable, so tests can assert
// run-to-run equality.
//
// Not every miner uses every counter: the class-blind baselines have no
// confidence bounds, CHARM/CLOSET prune only by support. A counter a miner
// does not implement stays zero; the ones it does implement share these
// exact semantics.
type Counters struct {
	NodesVisited      int64 // enumeration-tree nodes entered
	PrunedBackScan    int64 // subtrees cut by pruning strategy 2 (back scan)
	PrunedLooseBound  int64 // subtrees cut by Us2/Uc2 before scanning
	PrunedTightBound  int64 // subtrees cut by Us1/Uc1 (or support) after scanning
	PrunedChiBound    int64 // subtrees cut by the Lemma 3.9 chi bound
	PrunedGainBound   int64 // subtrees cut by the entropy/gini gain bounds
	RowsAbsorbed      int64 // candidates folded in by absorption pruning (rows for row enumerators, items for column enumerators)
	GroupsEmitted     int64 // groups/patterns kept (delivered or accumulated)
	GroupsNotInterest int64 // candidate upper bounds rejected as uninteresting
}

// Add accumulates o into c (used to merge per-worker counters).
func (c *Counters) Add(o Counters) {
	c.NodesVisited += o.NodesVisited
	c.PrunedBackScan += o.PrunedBackScan
	c.PrunedLooseBound += o.PrunedLooseBound
	c.PrunedTightBound += o.PrunedTightBound
	c.PrunedChiBound += o.PrunedChiBound
	c.PrunedGainBound += o.PrunedGainBound
	c.RowsAbsorbed += o.RowsAbsorbed
	c.GroupsEmitted += o.GroupsEmitted
	c.GroupsNotInterest += o.GroupsNotInterest
}

// Timings records the wall-clock phases of one run. Unlike Counters these
// vary run to run; they are reported, never compared.
type Timings struct {
	// Setup covers validation, row reordering and transposition.
	Setup time.Duration
	// Search covers the enumeration itself (including streamed emission).
	Search time.Duration
	// Finish covers post-enumeration work: the parallel interestingness
	// fixpoint, sorting, and batch materialization. Zero for miners that
	// finalize inline.
	Finish time.Duration
}

// Stats is the unified instrumentation record shared by all miners: the
// deterministic counters plus the phase timings. Counter fields are
// promoted (s.NodesVisited); tests that need run-to-run equality compare
// s.Counters.
//
// PrepareReused lives outside Counters on purpose: a run that reuses a
// prepared dataset snapshot must produce Counters identical to a
// from-scratch run (the snapshot only moves the build phase, it never
// changes the enumeration), so the reuse marker cannot participate in
// counter-equality checks.
type Stats struct {
	Counters
	Timings Timings
	// PrepareReused counts build phases satisfied from a prepared
	// dataset.Snapshot instead of being recomputed (1 per run that was
	// handed a snapshot, 0 otherwise). The saving itself shows up as a
	// near-zero Timings.Setup.
	PrepareReused int64
	// ArenaBytes is the high-water retained size of the run's arena and
	// scratch storage, for resource accounting. Like PrepareReused it
	// lives outside Counters: slab capacities grow by amortized doubling,
	// so the figure depends on allocation history (and, for parallel
	// miners, on the task decomposition), never satisfying the
	// run-to-run equality Counters guarantees.
	ArenaBytes int64
}

// MinerResult is the common face of every miner's result type — FARMER's
// rule groups, the top-k groups, and the five baselines' closed sets /
// rules all satisfy it. It lets a caller that juggles several miners (the
// serving layer's job manager, the progress endpoint) read run statistics
// and batch sizes uniformly instead of switching on six concrete types.
type MinerResult interface {
	// Stats returns the run's unified statistics. After cancellation it
	// reflects the work actually done (a partial run).
	Stats() Stats
	// Count returns the number of groups/patterns/rules materialized in
	// the batch result. Streamed runs do not accumulate a batch, so their
	// count is zero; the emitted total lives in Stats().GroupsEmitted.
	Count() int
}

// Phase starts timing a phase and returns the function that stops it,
// adding the elapsed time to *dst:
//
//	defer engine.Phase(&ex.Stats.Timings.Search)()
func Phase(dst *time.Duration) func() {
	t0 := time.Now()
	return func() { *dst += time.Since(t0) }
}

// Exec is the per-run execution state a miner threads through its
// enumeration: the unified Stats and the cancellation token. One Exec is
// private to one goroutine; parallel miners give each worker its own and
// merge Counters afterwards.
type Exec struct {
	Stats Stats

	ctx  context.Context
	done <-chan struct{}
	err  error

	// Budget state (SetBudget). budgeted gates the whole check so an
	// unbudgeted run pays one predictable branch per node and nothing else
	// — the exact miners' counters and timings are unaffected.
	budgeted    bool
	deadline    time.Time
	maxNodes    int64
	sharedNodes *atomic.Int64
	budgetErr   error
}

// NewExec returns an Exec bound to ctx. A nil ctx behaves like
// context.Background() (never cancelled, zero polling cost).
func NewExec(ctx context.Context) *Exec {
	e := &Exec{}
	if ctx != nil {
		e.ctx = ctx
		e.done = ctx.Done()
	}
	return e
}

// SetBudget arms the budget check EnterNode performs alongside its
// cancellation poll: the run stops (ErrBudgetExceeded) once the deadline
// passes or once more than maxNodes nodes have been entered. A zero
// deadline or a non-positive maxNodes leaves that dimension unlimited.
// shared, when non-nil, is the node counter drawn against instead of this
// Exec's own NodesVisited — how parallel anytime workers split one node
// budget: each worker's Exec points at the same counter.
func (e *Exec) SetBudget(deadline time.Time, maxNodes int64, shared *atomic.Int64) {
	e.deadline = deadline
	e.maxNodes = maxNodes
	e.sharedNodes = shared
	e.budgeted = !deadline.IsZero() || maxNodes > 0
}

// EnterNode counts one enumeration node, draws on the node/deadline budget
// when one is set, and polls cancellation. Miners call it first thing on
// every node expansion — that is the granularity of both contracts: once
// the context is cancelled or the budget exhausted, at most one further
// node is entered.
func (e *Exec) EnterNode() error {
	e.Stats.NodesVisited++
	if e.budgeted {
		if err := e.pollBudget(); err != nil {
			return err
		}
	}
	return e.Err()
}

// pollBudget checks the armed budget dimensions, latching the first
// exhaustion so every subsequent call keeps failing.
func (e *Exec) pollBudget() error {
	if e.budgetErr != nil {
		return e.budgetErr
	}
	if e.maxNodes > 0 {
		n := e.Stats.NodesVisited
		if e.sharedNodes != nil {
			n = e.sharedNodes.Add(1)
		}
		if n > e.maxNodes {
			e.budgetErr = ErrBudgetExceeded
			return e.budgetErr
		}
	}
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		e.budgetErr = ErrBudgetExceeded
		return e.budgetErr
	}
	return nil
}

// Err polls cancellation without counting a node. It returns nil until the
// context fires, then the context's error on every subsequent call.
func (e *Exec) Err() error {
	if e.err == nil && e.done != nil {
		select {
		case <-e.done:
			e.err = e.ctx.Err()
		default:
		}
	}
	return e.err
}

// Scratch is the shared per-run scratch substrate of the row-enumeration
// miners: epoch-stamped per-row counters (reset by bumping the epoch, not
// by clearing) and reusable bitsets, all sized to the dataset's row count
// and allocated once per run.
type Scratch struct {
	// Cnt and Stamp form the epoch-stamped counter array: Cnt[r] is valid
	// iff Stamp[r] equals the current epoch. Both the conditional-table
	// scan and the back scan use them; each pass calls NextEpoch instead
	// of zeroing.
	Cnt   []int32
	Stamp []uint32

	// InX marks the rows of the current enumeration path (X plus absorbed
	// rows) — the exclusion set of the back scan.
	InX *bitset.Set

	// Tmp is a reusable bitset for non-allocating set algebra on hot
	// paths (e.g. intersection prechecks before a Clone is justified).
	// Its contents are undefined between uses.
	Tmp *bitset.Set

	// A is the depth-indexed slab arena behind the conditional-table hot
	// path: every per-node buffer (cleaned candidate lists, count arrays,
	// child conditional tables) is pushed on node entry and popped on
	// recursion unwind, so steady-state node expansion allocates nothing.
	A Arena

	epoch uint32
}

// NewScratch returns scratch for a dataset of n rows.
func NewScratch(n int) *Scratch {
	return &Scratch{
		Cnt:   make([]int32, n),
		Stamp: make([]uint32, n),
		InX:   bitset.New(n),
		Tmp:   bitset.New(n),
	}
}

// Bytes reports the scratch substrate's retained storage: the stamped
// counter arrays, both bitsets, and the slab arena at its high-water size.
func (s *Scratch) Bytes() int64 {
	return int64(cap(s.Cnt))*4 + int64(cap(s.Stamp))*4 +
		s.InX.Bytes() + s.Tmp.Bytes() + s.A.Bytes()
}

// NextEpoch invalidates every stamped counter and returns the new epoch.
// On uint32 wraparound the stamp array is cleared explicitly, so stale
// stamps from four billion epochs ago can never collide with a live one.
func (s *Scratch) NextEpoch() uint32 {
	s.epoch++
	if s.epoch == 0 {
		clear(s.Stamp)
		s.epoch = 1
	}
	return s.epoch
}
