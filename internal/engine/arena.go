package engine

import "unsafe"

// Slab is a grow-only typed slab with stack (mark/release) discipline: the
// recursion-structured scratch data of an enumeration tree — conditional
// tables, cleaned candidate lists, count buffers — is pushed on node entry
// and popped on unwind, so steady-state node expansion reuses the same
// backing arrays instead of allocating per node.
//
// The contract mirrors a call stack:
//
//	mark := s.Mark()
//	buf := s.Alloc(n) // valid until Release(mark)
//	...
//	s.Release(mark)
//
// Alloc may grow the backing array (amortized doubling). Growth copies the
// live prefix, but slices handed out earlier keep pointing into the old
// array — they stay valid because Go's GC keeps that array alive for as
// long as any frame references it; the frames drop those references on
// unwind, after which the arena is a single array at its high-water size
// and every subsequent Alloc is allocation-free.
type Slab[T any] struct {
	buf []T
}

// Mark returns the current stack depth, to be passed to Release.
func (s *Slab[T]) Mark() int { return len(s.buf) }

// Release pops every allocation made since the corresponding Mark,
// restoring the slab's high-water state for reuse. Slices allocated above
// the mark must not be used afterwards.
func (s *Slab[T]) Release(mark int) { s.buf = s.buf[:mark] }

// Alloc returns a zeroed slice of length n whose storage lives in the slab
// until the enclosing mark is released. The result has capacity exactly n,
// so appending to it cannot clobber later allocations.
func (s *Slab[T]) Alloc(n int) []T {
	l := len(s.buf)
	if l+n > cap(s.buf) {
		c := 2 * cap(s.buf)
		if c < l+n {
			c = l + n
		}
		if c < 64 {
			c = 64
		}
		nb := make([]T, l, c)
		copy(nb, s.buf)
		s.buf = nb
	}
	s.buf = s.buf[:l+n]
	out := s.buf[l : l+n : l+n]
	clear(out)
	return out
}

// One allocates a single zeroed element and returns its address. The
// pointer is valid until the enclosing mark is released.
func (s *Slab[T]) One() *T {
	return &s.Alloc(1)[0]
}

// SizeBytes reports the slab's retained backing storage — capacity, not
// live length — since the high-water array is what the run actually held.
func (s *Slab[T]) SizeBytes() int64 {
	var zero T
	return int64(cap(s.buf)) * int64(unsafe.Sizeof(zero))
}

// Tuple is one row of a conditional transposed table: an item together with
// the enumeration-candidate rows containing it at the current node. The
// Rows slice is a view into an ancestor's storage and is never mutated.
// (The item type is int32 because dataset.Item is an alias of int32; using
// the underlying type keeps engine free of a dataset dependency.)
type Tuple struct {
	Item int32
	Rows []int32
}

// Arena groups the slabs behind the row-enumeration hot path: int32 row
// lists and count buffers, cleaned-table slice headers, and conditional
// transposed tables. One Arena is private to one goroutine (it lives in
// Scratch); parallel miners give each worker its own.
type Arena struct {
	I32  Slab[int32]
	Rows Slab[[]int32]
	Tup  Slab[Tuple]
}

// ArenaMark captures the depth of every slab at one recursion level.
type ArenaMark struct {
	i32, rows, tup int
}

// Mark records the arena state on node entry.
func (a *Arena) Mark() ArenaMark {
	return ArenaMark{a.I32.Mark(), a.Rows.Mark(), a.Tup.Mark()}
}

// Release pops every allocation made since m, on recursion unwind.
func (a *Arena) Release(m ArenaMark) {
	a.I32.Release(m.i32)
	a.Rows.Release(m.rows)
	a.Tup.Release(m.tup)
}

// Bytes reports the arena's retained backing storage across all slabs.
func (a *Arena) Bytes() int64 {
	return a.I32.SizeBytes() + a.Rows.SizeBytes() + a.Tup.SizeBytes()
}
