package engine

import (
	"context"
	"testing"
	"time"
)

func TestExecNilContextNeverCancels(t *testing.T) {
	e := NewExec(nil)
	for i := 0; i < 100; i++ {
		if err := e.EnterNode(); err != nil {
			t.Fatalf("nil-context exec cancelled at node %d: %v", i, err)
		}
	}
	if e.Stats.NodesVisited != 100 {
		t.Fatalf("NodesVisited = %d, want 100", e.Stats.NodesVisited)
	}
}

func TestExecBackgroundContext(t *testing.T) {
	e := NewExec(context.Background())
	if err := e.EnterNode(); err != nil {
		t.Fatal(err)
	}
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
}

// The cancellation contract: after cancel, the very next EnterNode reports
// the context error, and the error is sticky.
func TestExecCancellationWithinOneNode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := NewExec(ctx)
	if err := e.EnterNode(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := e.EnterNode(); err != context.Canceled {
		t.Fatalf("EnterNode after cancel = %v, want context.Canceled", err)
	}
	if e.Stats.NodesVisited != 2 {
		t.Fatalf("NodesVisited = %d, want 2 (the aborting node still counts)", e.Stats.NodesVisited)
	}
	if err := e.Err(); err != context.Canceled {
		t.Fatalf("Err not sticky: %v", err)
	}
}

func TestExecDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	e := NewExec(ctx)
	if err := e.EnterNode(); err != context.DeadlineExceeded {
		t.Fatalf("expired deadline gave %v, want DeadlineExceeded", err)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{NodesVisited: 1, PrunedBackScan: 2, PrunedLooseBound: 3, PrunedTightBound: 4,
		PrunedChiBound: 5, PrunedGainBound: 6, RowsAbsorbed: 7, GroupsEmitted: 8, GroupsNotInterest: 9}
	b := a
	b.Add(a)
	want := Counters{NodesVisited: 2, PrunedBackScan: 4, PrunedLooseBound: 6, PrunedTightBound: 8,
		PrunedChiBound: 10, PrunedGainBound: 12, RowsAbsorbed: 14, GroupsEmitted: 16, GroupsNotInterest: 18}
	if b != want {
		t.Fatalf("Add: got %+v want %+v", b, want)
	}
}

func TestCountersComparable(t *testing.T) {
	// Stats carries wall-clock timings; the deterministic portion must be
	// exactly the comparable Counters so differential tests can assert
	// equality across runs.
	s1 := Stats{Counters: Counters{NodesVisited: 5}, Timings: Timings{Search: time.Second}}
	s2 := Stats{Counters: Counters{NodesVisited: 5}, Timings: Timings{Search: 2 * time.Second}}
	if s1.Counters != s2.Counters {
		t.Fatal("equal counters compare unequal")
	}
	if s1 == s2 {
		t.Fatal("whole Stats with different timings compare equal")
	}
}

func TestPhaseAccumulates(t *testing.T) {
	var d time.Duration
	stop := Phase(&d)
	time.Sleep(time.Millisecond)
	stop()
	if d <= 0 {
		t.Fatalf("phase recorded %v, want > 0", d)
	}
	prev := d
	Phase(&d)() // immediate stop still accumulates (adds, not overwrites)
	if d < prev {
		t.Fatalf("phase overwrote accumulated time: %v -> %v", prev, d)
	}
}

func TestScratchEpochs(t *testing.T) {
	s := NewScratch(8)
	if len(s.Cnt) != 8 || len(s.Stamp) != 8 || s.InX.Len() != 8 || s.Tmp.Len() != 8 {
		t.Fatal("scratch sized wrong")
	}
	ep := s.NextEpoch()
	s.Stamp[3] = ep
	s.Cnt[3] = 7
	ep2 := s.NextEpoch()
	if ep2 == ep {
		t.Fatal("epoch did not advance")
	}
	if s.Stamp[3] == ep2 {
		t.Fatal("stale stamp matches new epoch")
	}
}
