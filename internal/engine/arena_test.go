package engine

import "testing"

func TestSlabMarkReleaseRestoresHighWater(t *testing.T) {
	var s Slab[int32]
	m0 := s.Mark()
	a := s.Alloc(10)
	for i := range a {
		a[i] = int32(i)
	}
	m1 := s.Mark()
	if m1 != 10 {
		t.Fatalf("mark after 10-element alloc = %d, want 10", m1)
	}
	b := s.Alloc(20)
	if len(b) != 20 {
		t.Fatalf("alloc len = %d, want 20", len(b))
	}
	s.Release(m1)
	if s.Mark() != m1 {
		t.Fatalf("release(m1) left mark %d, want %d", s.Mark(), m1)
	}
	// The older allocation survives its sibling's release untouched.
	for i := range a {
		if a[i] != int32(i) {
			t.Fatalf("a[%d] = %d corrupted by release", i, a[i])
		}
	}
	s.Release(m0)
	if s.Mark() != 0 {
		t.Fatalf("release(m0) left mark %d, want 0", s.Mark())
	}
}

func TestSlabAllocZeroesReusedStorage(t *testing.T) {
	var s Slab[int32]
	m := s.Mark()
	a := s.Alloc(8)
	for i := range a {
		a[i] = -1
	}
	s.Release(m)
	b := s.Alloc(8)
	for i := range b {
		if b[i] != 0 {
			t.Fatalf("reused slot %d = %d, want 0", i, b[i])
		}
	}
}

func TestSlabAllocCapIsExact(t *testing.T) {
	var s Slab[int32]
	a := s.Alloc(3)
	b := s.Alloc(3)
	// Appending to a must reallocate rather than clobber b.
	a = append(a, 99)
	if b[0] != 0 {
		t.Fatalf("append through earlier alloc clobbered later one: b[0] = %d", b[0])
	}
	_ = a
}

// Growth mid-recursion must not invalidate slices held by outer frames:
// they keep pointing into the old backing array.
func TestSlabGrowthKeepsOuterFramesValid(t *testing.T) {
	var s Slab[int32]
	outer := s.Alloc(4)
	for i := range outer {
		outer[i] = int32(100 + i)
	}
	m := s.Mark()
	for i := 0; i < 12; i++ { // force several growths
		_ = s.Alloc(1 << uint(i))
	}
	for i := range outer {
		if outer[i] != int32(100+i) {
			t.Fatalf("outer[%d] = %d after growth, want %d", i, outer[i], 100+i)
		}
	}
	s.Release(m)
}

// After one full push/pop cycle at a given shape, repeating the cycle
// performs zero heap allocations: the arena is at its high-water size.
func TestSlabSteadyStateZeroAllocs(t *testing.T) {
	var s Slab[int32]
	cycle := func() {
		m := s.Mark()
		_ = s.Alloc(64)
		inner := s.Mark()
		_ = s.Alloc(128)
		s.Release(inner)
		_ = s.Alloc(128)
		s.Release(m)
	}
	cycle() // warm to high water
	if n := testing.AllocsPerRun(20, cycle); n != 0 {
		t.Fatalf("steady-state cycle allocates %v times, want 0", n)
	}
}

func TestSlabOne(t *testing.T) {
	var s Slab[Tuple]
	m := s.Mark()
	p := s.One()
	p.Item = 7
	if s.Mark() != m+1 {
		t.Fatalf("One advanced mark by %d, want 1", s.Mark()-m)
	}
	q := s.One()
	if q.Item != 0 {
		t.Fatalf("One returned non-zeroed element: %+v", *q)
	}
	if p.Item != 7 {
		t.Fatalf("earlier One clobbered: %+v", *p)
	}
	s.Release(m)
}

func TestArenaMarkReleaseCoversAllSlabs(t *testing.T) {
	var a Arena
	m := a.Mark()
	_ = a.I32.Alloc(5)
	_ = a.Rows.Alloc(3)
	_ = a.Tup.Alloc(2)
	a.Release(m)
	if a.I32.Mark() != 0 || a.Rows.Mark() != 0 || a.Tup.Mark() != 0 {
		t.Fatalf("release left marks %d/%d/%d, want 0/0/0",
			a.I32.Mark(), a.Rows.Mark(), a.Tup.Mark())
	}
}

func TestScratchArenaSteadyStateZeroAllocs(t *testing.T) {
	sc := NewScratch(16)
	cycle := func() {
		m := sc.A.Mark()
		cleaned := sc.A.Rows.Alloc(4)
		backing := sc.A.I32.Alloc(32)
		cleaned[0] = backing[:8]
		_ = sc.A.Tup.Alloc(4)
		sc.A.Release(m)
	}
	cycle()
	if n := testing.AllocsPerRun(20, cycle); n != 0 {
		t.Fatalf("scratch arena steady-state cycle allocates %v times, want 0", n)
	}
}

// The epoch counter must survive uint32 wraparound: a stamp written just
// before the wrap may never collide with a post-wrap epoch.
func TestScratchEpochWraparoundReset(t *testing.T) {
	s := NewScratch(4)
	s.epoch = ^uint32(0) - 1
	ep := s.NextEpoch() // ^uint32(0)
	s.Stamp[2] = ep
	ep2 := s.NextEpoch() // wraps: stamps cleared, epoch restarts at 1
	if ep2 != 1 {
		t.Fatalf("post-wrap epoch = %d, want 1", ep2)
	}
	if s.Stamp[2] == ep2 {
		t.Fatal("stale stamp collides with post-wrap epoch")
	}
	for i, st := range s.Stamp {
		if st != 0 {
			t.Fatalf("Stamp[%d] = %d after wrap, want 0", i, st)
		}
	}
}
