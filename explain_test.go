package farmer_test

import (
	"context"
	"strings"
	"testing"

	farmer "repro"
)

func TestExplainGroupWithDiscretizer(t *testing.T) {
	m := &farmer.Matrix{
		ColNames:   []string{"zyx", "cd33"},
		ClassNames: []string{"ALL", "AML"},
		Labels:     []int{0, 0, 0, 1, 1, 1},
		Values: [][]float64{
			{2.0, -1.0}, {2.2, -0.8}, {1.8, -1.2},
			{-2.0, 1.0}, {-2.2, 0.8}, {-1.8, 1.2},
		},
	}
	disc, err := farmer.EntropyMDL(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := disc.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: 3, MinConf: 1, ComputeLowerBounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups on separable data")
	}
	e := farmer.ExplainGroup(d, disc, &res.Groups[0], "ALL")
	if len(e.Conditions) == 0 {
		t.Fatal("no conditions")
	}
	joined := strings.Join(e.Conditions, " ")
	if !strings.Contains(joined, "zyx") && !strings.Contains(joined, "cd33") {
		t.Fatalf("conditions lack gene names: %v", e.Conditions)
	}
	// Ranges must use comparisons, not raw bucket names.
	if !strings.ContainsAny(joined, "<>") {
		t.Fatalf("conditions lack value ranges: %v", e.Conditions)
	}
	if !strings.Contains(e.Summary, "confidence=100.0%") {
		t.Fatalf("summary = %q", e.Summary)
	}
	out := e.String()
	if !strings.Contains(out, "IF ") || !strings.Contains(out, "THEN ALL") {
		t.Fatalf("String = %q", out)
	}
	if len(e.AlternativeConditions) == 0 {
		t.Fatal("lower bounds not rendered")
	}
}

func TestExplainGroupWithoutDiscretizer(t *testing.T) {
	d, err := farmer.ReadTransactions(strings.NewReader("C : a b\nN : b\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Falls back to plain item names: some group carries item "a".
	found := false
	for i := range res.Groups {
		e := farmer.ExplainGroup(d, nil, &res.Groups[i], "C")
		if len(e.Conditions) == 0 {
			t.Fatal("no conditions")
		}
		if strings.Contains(strings.Join(e.Conditions, " "), "a") {
			found = true
		}
	}
	if !found {
		t.Fatal("no explanation mentions item a")
	}
}
