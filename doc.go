// Package farmer is a from-scratch Go implementation of FARMER — "Finding
// Interesting Rule Groups in Microarray Datasets" (Cong, Tung, Xu, Pan,
// Yang; SIGMOD 2004) — together with everything its evaluation depends on.
//
// Microarray datasets have very many columns (genes) and very few rows
// (samples). Conventional association-rule miners enumerate column
// combinations, a search space of 2^columns; FARMER instead enumerates ROW
// combinations (2^rows, which is small in this domain) over conditional
// transposed tables, and reports interesting rule groups (IRGs): bundles of
// rules with identical row support, represented by a unique upper bound and
// a set of lower bounds.
//
// # What is in the box
//
//   - Mine — the FARMER algorithm with all three pruning strategies of the
//     paper (candidate absorption, back scan, support/confidence/chi-square
//     bounds) and MineLB lower-bound recovery.
//   - Dataset/Matrix loaders, equal-depth / equal-width / entropy-MDL
//     discretization, and a deterministic synthetic microarray generator
//     standing in for the paper's five clinical datasets.
//   - The paper's baselines, independently implemented: CHARM, a
//     CLOSET-style FP-tree miner, ColumnE (column-enumeration interesting
//     rules), and CARPENTER (row-enumeration closed patterns).
//   - The Table-2 classifiers: an IRG classifier, CBA, and a linear SVM.
//   - An experiment harness (internal/experiments, driven by
//     cmd/experiments) regenerating every table and figure of §4.
//
// # Quick start
//
//	d, _ := farmer.ReadTransactions(f)
//	res, _ := farmer.Mine(d, d.ClassIndex("cancer"), farmer.MineOptions{
//		MinSup:             3,
//		MinConf:            0.9,
//		ComputeLowerBounds: true,
//	})
//	for _, g := range res.Groups {
//		fmt.Println(g.Format(d, "cancer"))
//	}
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package farmer
