// Command experiments regenerates the tables and figures of the FARMER
// paper's evaluation (§4) on the synthetic dataset stand-ins.
//
// Usage:
//
//	experiments [-exp all|table1|fig10|fig11|table2|scale|ablation|closet|cobbler]
//	            [-dataset NAME] [-quick] [-budget N]
//
// Output goes to stdout as text tables; EXPERIMENTS.md records a captured
// run against the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "experiment: all|table1|fig10|fig11|table2|scale|ablation|closet|cobbler")
		ds      = fs.String("dataset", "", "restrict to one dataset (BC, LC, CT, PC, ALL)")
		quick   = fs.Bool("quick", false, "shrink the sweeps for a fast smoke run")
		budget  = fs.Int64("budget", 0, "work budget for the baseline miners (0 = default)")
		buckets = fs.Int("buckets", 0, "equal-depth buckets (0 = the paper's 10)")
		format  = fs.String("format", "text", "output format for fig10/fig11/table2/scale: text|csv|plot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Quick: *quick, BaselineBudget: *budget, Buckets: *buckets}
	specs := synth.BenchSpecs()
	if *ds != "" {
		s, ok := synth.BenchSpec(strings.ToUpper(*ds))
		if !ok {
			return fmt.Errorf("unknown dataset %q (want BC, LC, CT, PC or ALL)", *ds)
		}
		specs = []synth.Spec{s}
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		ran = true
		fmt.Fprintln(stdout, "=== Table 1 (paper-shape specs) ===")
		fmt.Fprintln(stdout, experiments.Table1(synth.PaperSpecs()))
		fmt.Fprintln(stdout, "=== Table 1 (bench-scale specs actually swept below) ===")
		fmt.Fprintln(stdout, experiments.Table1(synth.BenchSpecs()))
	}
	if want("fig10") {
		ran = true
		for _, s := range specs {
			res, err := experiments.Figure10(s, cfg)
			if err != nil {
				return err
			}
			switch *format {
			case "csv":
				fmt.Fprintln(stdout, res.CSV())
			case "plot":
				fmt.Fprintln(stdout, res.Plot())
			default:
				fmt.Fprintln(stdout, res.Render())
			}
		}
	}
	if want("fig11") {
		ran = true
		for _, s := range specs {
			res, err := experiments.Figure11(s, cfg)
			if err != nil {
				return err
			}
			switch *format {
			case "csv":
				fmt.Fprintln(stdout, res.CSV())
			case "plot":
				fmt.Fprintln(stdout, res.Plot())
			default:
				fmt.Fprintln(stdout, res.Render())
			}
		}
	}
	if want("table2") {
		ran = true
		t2specs := synth.Table2Specs()
		if *ds != "" {
			var filtered []synth.Spec
			for _, s := range t2specs {
				if s.Name == strings.ToUpper(*ds) {
					filtered = append(filtered, s)
				}
			}
			t2specs = filtered
		}
		res, err := experiments.Table2(t2specs, cfg)
		if err != nil {
			return err
		}
		if *format == "csv" {
			fmt.Fprintln(stdout, res.CSV())
		} else {
			fmt.Fprintln(stdout, res.Render())
		}
	}
	if want("scale") {
		ran = true
		factors := []int{1, 2, 5, 10}
		if *quick {
			factors = []int{1, 2}
		}
		for _, s := range specs {
			res, err := experiments.ScaleUp(s, factors, cfg)
			if err != nil {
				return err
			}
			if *format == "csv" {
				fmt.Fprintln(stdout, res.CSV())
			} else {
				fmt.Fprintln(stdout, res.Render())
			}
		}
	}
	if want("ablation") {
		ran = true
		for _, s := range specs {
			res, err := experiments.Ablation(s, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, res.Render())
		}
	}
	if want("cobbler") {
		ran = true
		for _, s := range specs {
			res, err := experiments.Cobbler(s, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, res.Render())
		}
	}
	if want("closet") {
		ran = true
		for _, s := range specs {
			res, err := experiments.ClosetComparison(s, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, res.Render())
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
