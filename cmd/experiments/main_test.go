package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), err
}

func TestRunRejections(t *testing.T) {
	if _, err := runCLI(t, "-exp", "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := runCLI(t, "-dataset", "XX"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunTable1(t *testing.T) {
	out, err := runCLI(t, "-exp", "table1")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Table 1", "24481", "relapse", "bench-scale"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q", frag)
		}
	}
}

func TestRunFig10QuickSingleDataset(t *testing.T) {
	out, err := runCLI(t, "-exp", "fig10", "-dataset", "CT", "-quick", "-budget", "300000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 10 — CT") {
		t.Fatalf("output missing panel header:\n%s", out)
	}
	if strings.Contains(out, "Figure 10 — BC") {
		t.Fatal("-dataset filter ignored")
	}
}

func TestRunFig11QuickSingleDataset(t *testing.T) {
	out, err := runCLI(t, "-exp", "fig11", "-dataset", "CT", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 11 — CT") || !strings.Contains(out, "minchi=10") {
		t.Fatalf("output wrong:\n%s", out)
	}
}

func TestRunTable2SingleDataset(t *testing.T) {
	out, err := runCLI(t, "-exp", "table2", "-dataset", "CT", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "CT") {
		t.Fatalf("output wrong:\n%s", out)
	}
	if strings.Contains(out, "BC ") {
		t.Fatal("-dataset filter ignored for table2")
	}
}

func TestRunFormatFlag(t *testing.T) {
	csv, err := runCLI(t, "-exp", "fig11", "-dataset", "CT", "-quick", "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, "dataset,minconf,chi0_ms") {
		t.Fatalf("csv output wrong:\n%s", csv)
	}
	plot, err := runCLI(t, "-exp", "fig11", "-dataset", "CT", "-quick", "-format", "plot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plot, "log scale") {
		t.Fatalf("plot output wrong:\n%s", plot)
	}
}

func TestRunScaleClosetCobblerQuick(t *testing.T) {
	out, err := runCLI(t, "-exp", "scale", "-dataset", "CT", "-quick", "-budget", "200000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Scale-up — CT") {
		t.Fatalf("scale output wrong:\n%s", out)
	}
	csv, err := runCLI(t, "-exp", "scale", "-dataset", "CT", "-quick", "-budget", "200000", "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, "dataset,factor,rows") {
		t.Fatalf("scale csv wrong:\n%s", csv)
	}
	out, err = runCLI(t, "-exp", "closet", "-dataset", "CT", "-quick", "-budget", "200000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CLOSET") {
		t.Fatalf("closet output wrong:\n%s", out)
	}
	out, err = runCLI(t, "-exp", "cobbler", "-dataset", "CT", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "COBBLER") {
		t.Fatalf("cobbler output wrong:\n%s", out)
	}
}

func TestRunAblationQuick(t *testing.T) {
	out, err := runCLI(t, "-exp", "ablation", "-dataset", "CT", "-quick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no pruning at all") {
		t.Fatalf("output wrong:\n%s", out)
	}
}
