package main

import (
	"bytes"
	"strings"
	"testing"

	farmer "repro"
	"repro/internal/synth"
)

// fixtureCSV renders a small separable matrix in the CLI's input format.
func fixtureCSV(t *testing.T) string {
	t.Helper()
	spec := synth.Spec{
		Name: "cli", Rows: 30, Cols: 24, Class1Rows: 15,
		ClassNames:  [2]string{"tumor", "normal"},
		Informative: 8, Effect: 2.5, FlipProb: 0.05, Seed: 21,
	}
	m, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := farmer.WriteMatrixCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func runCLI(t *testing.T, stdin string, args ...string) (string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), err
}

func TestRunRequiresTrainOrCV(t *testing.T) {
	if _, err := runCLI(t, fixtureCSV(t)); err == nil {
		t.Fatal("missing -train/-cv accepted")
	}
}

func TestRunSingleSplit(t *testing.T) {
	out, err := runCLI(t, fixtureCSV(t), "-train", "20", "-confusion")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"20 train / 10 test", "IRG classifier:", "CBA:", "SVM:", "confusion matrix"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunCrossValidation(t *testing.T) {
	out, err := runCLI(t, fixtureCSV(t), "-cv", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3-fold cross-validation") || !strings.Contains(out, "±") {
		t.Fatalf("CV output wrong:\n%s", out)
	}
}

func TestRunBadInput(t *testing.T) {
	if _, err := runCLI(t, "not,a,matrix\n1,2\n", "-train", "2"); err == nil {
		t.Fatal("malformed CSV accepted")
	}
	if _, err := runCLI(t, fixtureCSV(t), "-train", "9999"); err == nil {
		t.Fatal("oversized split accepted")
	}
}
