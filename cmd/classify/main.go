// Command classify runs the paper's classification protocol (Table 2) on a
// continuous expression matrix: entropy-MDL discretization fitted on the
// training split, then the IRG classifier, CBA and the linear SVM, with
// test accuracies printed per classifier. With -cv it cross-validates
// instead of a single split.
//
// Usage:
//
//	classify -train N [-minsupfrac 0.7] [-minconf 0.8] [-confusion] [FILE.csv]
//	classify -cv K [-seed S] [FILE.csv]
//
// FILE (default stdin) uses the matrix CSV format ("label,g1,g2,...").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	farmer "repro"
	"repro/internal/classify"
	"repro/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "classify: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		train      = fs.Int("train", 0, "number of training rows (stratified)")
		cv         = fs.Int("cv", 0, "k-fold cross-validation instead of one split")
		seed       = fs.Int64("seed", 1, "shuffle seed for -cv")
		minsupfrac = fs.Float64("minsupfrac", 0.7, "per-class minimum support fraction for the rule miners")
		minconf    = fs.Float64("minconf", 0.8, "minimum confidence for the rule miners")
		confusion  = fs.Bool("confusion", false, "also print the IRG classifier's confusion matrix")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *train <= 0 && *cv <= 0 {
		return fmt.Errorf("need -train N or -cv K")
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	m, err := farmer.ReadMatrixCSV(bufio.NewReader(in))
	if err != nil {
		return err
	}

	irgOpt := classify.IRGOptions{MinSupFrac: *minsupfrac, MinConf: *minconf}
	cbaOpt := classify.CBAOptions{MinSupFrac: *minsupfrac, MinConf: *minconf}

	if *cv > 0 {
		return runCV(stdout, m, *cv, *seed, irgOpt, cbaOpt)
	}

	sp, err := farmer.StratifiedSplit(m.Labels, len(m.ClassNames), *train)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "dataset: %d rows (%d train / %d test), %d genes, classes %v\n",
		m.NumRows(), len(sp.Train), len(sp.Test), m.NumCols(), m.ClassNames)

	report(stdout, "IRG classifier", func() (float64, error) {
		return classify.EvaluateIRG(m, sp, irgOpt)
	})
	report(stdout, "CBA", func() (float64, error) {
		return classify.EvaluateCBA(m, sp, cbaOpt)
	})
	report(stdout, "SVM", func() (float64, error) {
		return classify.EvaluateSVM(m, sp, classify.SVMOptions{})
	})

	if *confusion {
		if err := printConfusion(stdout, m, sp, irgOpt); err != nil {
			return err
		}
	}
	return nil
}

func report(w io.Writer, name string, eval func() (float64, error)) {
	if acc, err := eval(); err != nil {
		fmt.Fprintf(w, "%-15s error: %v\n", name+":", err)
	} else {
		fmt.Fprintf(w, "%-15s %.2f%%\n", name+":", 100*acc)
	}
}

func runCV(w io.Writer, m *dataset.Matrix, k int, seed int64,
	irgOpt classify.IRGOptions, cbaOpt classify.CBAOptions) error {
	fmt.Fprintf(w, "dataset: %d rows, %d genes; %d-fold cross-validation\n",
		m.NumRows(), m.NumCols(), k)
	evals := []struct {
		name string
		fn   func(*dataset.Matrix, classify.Split) (float64, error)
	}{
		{"IRG classifier", func(m *dataset.Matrix, sp classify.Split) (float64, error) {
			return classify.EvaluateIRG(m, sp, irgOpt)
		}},
		{"CBA", func(m *dataset.Matrix, sp classify.Split) (float64, error) {
			return classify.EvaluateCBA(m, sp, cbaOpt)
		}},
		{"SVM", func(m *dataset.Matrix, sp classify.Split) (float64, error) {
			return classify.EvaluateSVM(m, sp, classify.SVMOptions{})
		}},
	}
	for _, e := range evals {
		res, err := classify.CrossValidate(m, k, seed, e.fn)
		if err != nil {
			fmt.Fprintf(w, "%-15s error: %v\n", e.name+":", err)
			continue
		}
		fmt.Fprintf(w, "%-15s %.2f%% ± %.2f%%\n", e.name+":", 100*res.Mean, 100*res.StdDev)
	}
	return nil
}

func printConfusion(w io.Writer, m *dataset.Matrix, sp classify.Split, opt classify.IRGOptions) error {
	train, test, err := classify.RulePipeline(m, sp)
	if err != nil {
		return err
	}
	cls, err := classify.TrainIRG(train, opt)
	if err != nil {
		return err
	}
	preds := make([]int, len(test.Rows))
	labels := make([]int, len(test.Rows))
	for i := range test.Rows {
		preds[i] = cls.Predict(&test.Rows[i])
		labels[i] = test.Rows[i].Class
	}
	conf, err := classify.NewConfusion(preds, labels, m.ClassNames)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nIRG classifier confusion matrix:\n%s", conf.String())
	return nil
}
