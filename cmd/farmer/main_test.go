package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = `
C : a b
C : a
N : b
`

func runCLI(t *testing.T, args []string, stdin string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestRunRequiresClass(t *testing.T) {
	if _, _, err := runCLI(t, nil, fixture); err == nil {
		t.Fatal("missing -class accepted")
	}
}

func TestRunUnknownClass(t *testing.T) {
	_, _, err := runCLI(t, []string{"-class", "zzz"}, fixture)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if _, _, err := runCLI(t, []string{"-nonsense"}, fixture); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunTextOutput(t *testing.T) {
	out, errOut, err := runCLI(t, []string{"-class", "C", "-minsup", "2", "-lower", "-stats"}, fixture)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{a} -> C") {
		t.Fatalf("output missing rule:\n%s", out)
	}
	if !strings.Contains(out, "lower: {a}") {
		t.Fatalf("output missing lower bound:\n%s", out)
	}
	if !strings.Contains(errOut, "groups=") {
		t.Fatalf("stderr missing stats:\n%s", errOut)
	}
}

func TestRunJSONOutput(t *testing.T) {
	out, _, err := runCLI(t, []string{"-class", "C", "-minsup", "2", "-lower", "-json"}, fixture)
	if err != nil {
		t.Fatal(err)
	}
	var groups []jsonGroup
	if err := json.Unmarshal([]byte(out), &groups); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(groups) != 1 {
		t.Fatalf("%d groups, want 1", len(groups))
	}
	g := groups[0]
	if g.Class != "C" || g.Support != 2 || g.Confidence != 1 {
		t.Fatalf("group = %+v", g)
	}
	if len(g.Antecedent) != 1 || g.Antecedent[0] != "a" {
		t.Fatalf("antecedent = %v", g.Antecedent)
	}
	if len(g.LowerBounds) != 1 || g.LowerBounds[0][0] != "a" {
		t.Fatalf("lower bounds = %v", g.LowerBounds)
	}
}

func TestRunMeasureFlags(t *testing.T) {
	// An impossible lift threshold yields zero groups but no error.
	out, _, err := runCLI(t, []string{"-class", "C", "-minlift", "99"}, fixture)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("expected no groups, got:\n%s", out)
	}
	// An invalid threshold must surface the core validation error.
	if _, _, err := runCLI(t, []string{"-class", "C", "-mingini", "0.9"}, fixture); err == nil {
		t.Fatal("invalid MinGiniGain accepted")
	}
}

func TestRunReadsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.txt")
	if err := writeFile(path, fixture); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, []string{"-class", "C", "-minsup", "2", path}, "ignored stdin")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{a} -> C") {
		t.Fatalf("file input not used:\n%s", out)
	}
	if _, _, err := runCLI(t, []string{"-class", "C", filepath.Join(dir, "missing.txt")}, ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunMalformedInput(t *testing.T) {
	if _, _, err := runCLI(t, []string{"-class", "C"}, "no separator here"); err == nil {
		t.Fatal("malformed input accepted")
	}
}

func TestRunTopK(t *testing.T) {
	out, _, err := runCLI(t, []string{"-class", "C", "-topk", "2"}, fixture)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#1 score=") {
		t.Fatalf("topk output wrong:\n%s", out)
	}
	if _, _, err := runCLI(t, []string{"-class", "C", "-topk", "2", "-measure", "bogus"}, fixture); err == nil {
		t.Fatal("bad measure accepted")
	}
	for _, m := range []string{"entropy", "gini"} {
		if _, _, err := runCLI(t, []string{"-class", "C", "-topk", "1", "-measure", m}, fixture); err != nil {
			t.Fatalf("measure %s: %v", m, err)
		}
	}
}

func TestRunParallelWorkers(t *testing.T) {
	seq, _, err := runCLI(t, []string{"-class", "C", "-minsup", "1"}, fixture)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := runCLI(t, []string{"-class", "C", "-minsup", "1", "-workers", "3"}, fixture)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(par, "->") != strings.Count(seq, "->") {
		t.Fatalf("parallel output differs:\nseq %s\npar %s", seq, par)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
