// Command farmer mines interesting rule groups from a transactional
// dataset file.
//
// Usage:
//
//	farmer -class LABEL [-minsup N] [-minconf F] [-minchi F] [-minlift F]
//	       [-minconv F] [-minent F] [-mingini F]
//	       [-lower] [-maxlower N] [-stats] [-json] [FILE]
//
// FILE (default stdin) uses the transactional format: one row per line,
// "<class> : item item ...". The discovered upper bounds are printed one
// per line with support, confidence, chi-square value and supporting rows;
// -lower also prints each group's lower bounds; -json emits a JSON array.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	farmer "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "farmer: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("farmer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		class    = fs.String("class", "", "consequent class label (required)")
		minsup   = fs.Int("minsup", 1, "minimum rule support |R(A ∪ C)|")
		minconf  = fs.Float64("minconf", 0, "minimum confidence in [0,1]")
		minchi   = fs.Float64("minchi", 0, "minimum chi-square value (0 disables)")
		minlift  = fs.Float64("minlift", 0, "minimum lift (0 disables)")
		minconv  = fs.Float64("minconv", 0, "minimum conviction (0 disables)")
		minent   = fs.Float64("minent", 0, "minimum entropy gain (0 disables)")
		mingini  = fs.Float64("mingini", 0, "minimum gini gain (0 disables)")
		lower    = fs.Bool("lower", false, "also compute and print lower bounds")
		maxlower = fs.Int("maxlower", 0, "cap lower bounds per group (0 = unlimited)")
		stats    = fs.Bool("stats", false, "print search statistics to stderr")
		asJSON   = fs.Bool("json", false, "emit rule groups as a JSON array")
		topk     = fs.Int("topk", 0, "instead of IRGs, print the k best rule groups by -measure")
		measure  = fs.String("measure", "chi2", "objective for -topk: chi2|entropy|gini")
		workers  = fs.Int("workers", 1, "mine with this many goroutines (0 = all cores)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *class == "" {
		return fmt.Errorf("-class is required")
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	d, err := farmer.ReadTransactions(bufio.NewReader(in))
	if err != nil {
		return err
	}
	consequent := d.ClassIndex(*class)
	if consequent < 0 {
		return fmt.Errorf("class %q not found; dataset classes: %s", *class, strings.Join(d.ClassNames, ", "))
	}

	if *topk > 0 {
		return runTopK(stdout, d, consequent, *class, *topk, *measure, *minsup)
	}

	opt := farmer.MineOptions{
		MinSup:             *minsup,
		MinConf:            *minconf,
		MinChi:             *minchi,
		MinLift:            *minlift,
		MinConviction:      *minconv,
		MinEntropyGain:     *minent,
		MinGiniGain:        *mingini,
		ComputeLowerBounds: *lower,
		MaxLowerBounds:     *maxlower,
	}
	if *workers != 1 {
		opt.Workers = *workers
		if *workers <= 0 {
			opt.Workers = -1 // all cores
		}
	}
	res, err := farmer.RunFARMER(context.Background(), d, consequent, opt)
	if err != nil {
		return err
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	if *asJSON {
		if err := writeJSON(w, d, *class, res); err != nil {
			return err
		}
	} else {
		printText(w, d, *class, res, *lower)
	}
	if *stats {
		s := res.Stats()
		fmt.Fprintf(stderr,
			"groups=%d nodes=%d pruned(back-scan=%d loose=%d tight=%d chi=%d gain=%d) absorbed=%d\n",
			len(res.Groups), s.NodesVisited, s.PrunedBackScan,
			s.PrunedLooseBound, s.PrunedTightBound, s.PrunedChiBound, s.PrunedGainBound, s.RowsAbsorbed)
	}
	return nil
}

// runTopK prints the k best rule groups under the chosen measure.
func runTopK(stdout io.Writer, d *farmer.Dataset, consequent int, class string, k int, measureName string, minsup int) error {
	measure, err := farmer.ParseMeasure(measureName)
	if err != nil {
		return err
	}
	res, err := farmer.RunTopK(context.Background(), d, consequent,
		farmer.TopKOptions{K: k, Measure: measure, MinSup: minsup})
	if err != nil {
		return err
	}
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	for rank, g := range res.Groups {
		fmt.Fprintf(w, "#%d score=%.4f %s\n", rank+1, g.Score, g.Format(d, class))
	}
	return nil
}

// jsonGroup is the stable JSON shape of one rule group.
type jsonGroup struct {
	Antecedent  []string   `json:"antecedent"`
	Class       string     `json:"class"`
	Support     int        `json:"support"`
	SupNeg      int        `json:"supportNeg"`
	Confidence  float64    `json:"confidence"`
	Chi         float64    `json:"chi"`
	Rows        []int      `json:"rows"`
	LowerBounds [][]string `json:"lowerBounds,omitempty"`
	Truncated   bool       `json:"lowerBoundsTruncated,omitempty"`
}

func writeJSON(w *bufio.Writer, d *farmer.Dataset, class string, res *farmer.MineResult) error {
	names := func(items []farmer.Item) []string {
		out := make([]string, len(items))
		for i, it := range items {
			out[i] = d.ItemName(it)
		}
		return out
	}
	groups := make([]jsonGroup, 0, len(res.Groups))
	for _, g := range res.Groups {
		jg := jsonGroup{
			Antecedent: names(g.Antecedent),
			Class:      class,
			Support:    g.SupPos,
			SupNeg:     g.SupNeg,
			Confidence: g.Confidence,
			Chi:        g.Chi,
			Rows:       g.Rows,
			Truncated:  g.Truncated,
		}
		for _, lb := range g.LowerBounds {
			jg.LowerBounds = append(jg.LowerBounds, names(lb))
		}
		groups = append(groups, jg)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(groups)
}

func printText(w *bufio.Writer, d *farmer.Dataset, class string, res *farmer.MineResult, lower bool) {
	for _, g := range res.Groups {
		fmt.Fprintln(w, g.Format(d, class))
		if lower {
			for _, lb := range g.LowerBounds {
				names := make([]string, len(lb))
				for i, it := range lb {
					names[i] = d.ItemName(it)
				}
				fmt.Fprintf(w, "    lower: {%s}\n", strings.Join(names, ","))
			}
			if g.Truncated {
				fmt.Fprintln(w, "    lower: ... (truncated)")
			}
		}
	}
}
