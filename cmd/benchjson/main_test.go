package main

import "testing"

func TestRunRejectsUnknownDataset(t *testing.T) {
	if _, err := run([]string{"no-such-spec"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
