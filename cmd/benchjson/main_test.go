package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestRunRejectsUnknownDataset(t *testing.T) {
	if _, err := run([]string{"no-such-spec"}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func writeRows(t *testing.T, dir, name string, rows []Row) string {
	t.Helper()
	buf, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeRows(t, dir, "old.json", []Row{
		{Name: "Mine", Dataset: "CT", NsPerOp: 100, AllocsPerOp: 1000},
		{Name: "CHARM", Dataset: "CT", NsPerOp: 200, AllocsPerOp: 500},
	})
	newPath := writeRows(t, dir, "new.json", []Row{
		{Name: "Mine", Dataset: "CT", NsPerOp: 105, AllocsPerOp: 900},  // within threshold
		{Name: "CHARM", Dataset: "CT", NsPerOp: 400, AllocsPerOp: 500}, // 2x slower
	})
	var w strings.Builder
	regressed, err := compare(oldPath, newPath, 0.30, "both", nil, &w)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("2x ns/op regression not flagged:\n%s", w.String())
	}
	if !strings.Contains(w.String(), "REGRESSION") {
		t.Fatalf("output lacks REGRESSION marker:\n%s", w.String())
	}
}

func TestCompareImprovementAndThreshold(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeRows(t, dir, "old.json", []Row{
		{Name: "Mine", Dataset: "CT", NsPerOp: 100, AllocsPerOp: 134070},
	})
	newPath := writeRows(t, dir, "new.json", []Row{
		{Name: "Mine", Dataset: "CT", NsPerOp: 90, AllocsPerOp: 1671},
	})
	var w strings.Builder
	regressed, err := compare(oldPath, newPath, 0.30, "both", nil, &w)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("improvement flagged as regression:\n%s", w.String())
	}
	// A looser threshold tolerates a mild slowdown; a tighter one flags it.
	newPath2 := writeRows(t, dir, "new2.json", []Row{
		{Name: "Mine", Dataset: "CT", NsPerOp: 120, AllocsPerOp: 134070},
	})
	regressed, err = compare(oldPath, newPath2, 0.30, "both", nil, &w)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("20% slowdown flagged despite 30% threshold")
	}
	regressed, err = compare(oldPath, newPath2, 0.10, "both", nil, &w)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("20% slowdown not flagged at 10% threshold")
	}
}

func TestCompareMetricAndMatchGating(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeRows(t, dir, "old.json", []Row{
		{Name: "Mine", Dataset: "CT", NsPerOp: 100, AllocsPerOp: 1000},
		{Name: "ServeCold", Dataset: "CT", NsPerOp: 100, AllocsPerOp: 1000},
	})
	// Mine regresses only on allocs; ServeCold only on ns.
	newPath := writeRows(t, dir, "new.json", []Row{
		{Name: "Mine", Dataset: "CT", NsPerOp: 100, AllocsPerOp: 1500},
		{Name: "ServeCold", Dataset: "CT", NsPerOp: 400, AllocsPerOp: 1000},
	})
	mine := regexp.MustCompile(`^(Mine|CHARM)/`)

	var w strings.Builder
	regressed, err := compare(oldPath, newPath, 0.10, "allocs", mine, &w)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("Mine allocs regression not gated:\n%s", w.String())
	}

	// The ns-only regression is outside the allocs metric; with the match
	// limited to Mine rows, nothing gates.
	regressed, err = compare(oldPath, newPath, 0.10, "ns", mine, &w)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("ns gate fired for rows excluded by -match")
	}

	regressed, err = compare(oldPath, newPath, 0.10, "ns", nil, &w)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("unfiltered ns gate missed the ServeCold regression")
	}
}

func TestCompareBytesMetric(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeRows(t, dir, "old.json", []Row{
		{Name: "ServeWarm", Dataset: "CT", NsPerOp: 100, AllocsPerOp: 50, BytesPerOp: 1000},
	})
	// Only bytes/op regresses.
	newPath := writeRows(t, dir, "new.json", []Row{
		{Name: "ServeWarm", Dataset: "CT", NsPerOp: 100, AllocsPerOp: 50, BytesPerOp: 2000},
	})
	var w strings.Builder
	regressed, err := compare(oldPath, newPath, 0.10, "allocs", nil, &w)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("allocs-only gate fired on a bytes regression:\n%s", w.String())
	}
	regressed, err = compare(oldPath, newPath, 0.10, "allocs,bytes", nil, &w)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("allocs,bytes gate missed a 2x bytes/op regression:\n%s", w.String())
	}
	if _, err := compare(oldPath, newPath, 0.10, "allocs,watts", nil, &w); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestCompareUnmatchedBenchmarksNeverFail(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeRows(t, dir, "old.json", []Row{
		{Name: "Mine", Dataset: "CT", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "Gone", Dataset: "CT", NsPerOp: 50, AllocsPerOp: 5},
	})
	newPath := writeRows(t, dir, "new.json", []Row{
		{Name: "Mine", Dataset: "CT", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "Fresh", Dataset: "CT", NsPerOp: 999999, AllocsPerOp: 999999},
	})
	var w strings.Builder
	regressed, err := compare(oldPath, newPath, 0.30, "both", nil, &w)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("added/removed benchmarks must not fail the comparison:\n%s", w.String())
	}
	if !strings.Contains(w.String(), "new benchmark") || !strings.Contains(w.String(), "missing from new") {
		t.Fatalf("coverage drift not reported:\n%s", w.String())
	}
}
