// Command benchjson measures the hot mining entry points — Mine,
// MineParallel and CHARM — over the bench datasets with testing.Benchmark
// and writes the results as a JSON array (ns/op, allocs/op, B/op), along
// with the two ways a service can obtain a prepared snapshot: Prepare
// (compile from the in-memory dataset) versus SnapshotLoad (read + decode
// the durable encoding, the farmerd -store restart path). CI runs it via
// `make bench-json` and archives BENCH_core.json so allocation regressions
// in the shared engine show up as a diff, not a vibe.
//
// -serve instead measures the farmerd request path end to end over
// httptest (submit + stream NDJSON): a cold service that mines every
// request versus a warm one replaying its result cache, plus a budgeted
// anytime top-k query (max_millis) that mines up to its deadline on every
// request. CI archives the output as BENCH_serve.json.
//
// -quality runs the anytime-tier quality harness instead of timing
// benchmarks: every (strategy, budget fraction) cell over the bench
// datasets scored against the exhausted exact top-k miner, under node
// budgets (deterministic) and wall-clock budgets (the serving-facing
// number). The run fails unless best-first at the 10% budget keeps at
// least 0.9 mean recall in the dimensions selected by -quality-gate
// (both by default; CI gates only the machine-independent node dimension
// and treats wall clock as reporting). CI runs this via
// `make bench-quality` and archives BENCH_quality.json.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	farmer "repro"
	"repro/internal/bitset"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/synth"
)

// Row is one benchmark measurement in the output file.
type Row struct {
	Name        string  `json:"name"`
	Dataset     string  `json:"dataset"`
	MinSup      int     `json:"minsup"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// writeRestartFixtures writes d to temp files in both on-disk forms a
// restarting service can resume from: the transactions text and the
// durable snapshot encoding. The caller removes both.
func writeRestartFixtures(d *farmer.Dataset) (txtFile, snapFile string, err error) {
	writeTemp := func(pattern string, write func(io.Writer) error) (string, error) {
		f, err := os.CreateTemp("", pattern)
		if err != nil {
			return "", err
		}
		if err := write(f); err != nil {
			f.Close()
			os.Remove(f.Name())
			return "", err
		}
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			return "", err
		}
		return f.Name(), nil
	}
	txtFile, err = writeTemp("benchjson-*.txt", func(w io.Writer) error {
		return farmer.WriteTransactions(w, d)
	})
	if err != nil {
		return "", "", err
	}
	snap, err := farmer.Prepare(d)
	if err != nil {
		os.Remove(txtFile)
		return "", "", err
	}
	snapFile, err = writeTemp("benchjson-*.snap", func(w io.Writer) error {
		return farmer.WriteSnapshot(w, snap)
	})
	if err != nil {
		os.Remove(txtFile)
		return "", "", err
	}
	return txtFile, snapFile, nil
}

// midMinsup mirrors bench_test.go's representative Figure-10 sweep point.
func midMinsup(d *farmer.Dataset) int {
	m := d.ClassCount(0) / 3
	if m < 2 {
		m = 2
	}
	return m
}

func run(datasets []string) ([]Row, error) {
	var rows []Row
	for _, name := range datasets {
		spec, ok := synth.BenchSpec(name)
		if !ok {
			return nil, fmt.Errorf("no bench spec %q", name)
		}
		d, err := spec.GenerateDiscrete(10)
		if err != nil {
			return nil, fmt.Errorf("generate %s: %w", name, err)
		}
		minsup := midMinsup(d)

		// The two restart paths, both starting from a file on disk and
		// ending with a ready snapshot: Prepare re-reads the transactions
		// text and compiles (farmerd without -store), SnapshotLoad reads
		// and decodes the durable encoding (farmerd with -store).
		txtFile, snapFile, err := writeRestartFixtures(d)
		if err != nil {
			return nil, fmt.Errorf("write restart fixtures %s: %w", name, err)
		}
		defer os.Remove(txtFile)
		defer os.Remove(snapFile)

		benches := []struct {
			name string
			fn   func() error
		}{
			{"Prepare", func() error {
				buf, err := os.ReadFile(txtFile)
				if err != nil {
					return err
				}
				d, err := farmer.ReadTransactions(bytes.NewReader(buf))
				if err != nil {
					return err
				}
				_, err = farmer.Prepare(d)
				return err
			}},
			{"SnapshotLoad", func() error {
				// Exactly what store.Load does on an LRU miss.
				buf, err := os.ReadFile(snapFile)
				if err != nil {
					return err
				}
				_, err = store.Decode(buf)
				return err
			}},
			{"Mine", func() error {
				_, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: minsup})
				return err
			}},
			{"MineParallel", func() error {
				// Explicit worker count: the bench datasets are small enough
				// that Workers:-1 would take the sequential fallback, and this
				// row exists to measure the parallel scheduler.
				_, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: minsup, Workers: runtime.GOMAXPROCS(0)})
				return err
			}},
			{"CHARM", func() error {
				_, err := farmer.RunCHARM(context.Background(), d, farmer.CharmOptions{MinSup: minsup})
				return err
			}},
		}
		for _, bench := range benches {
			fn := bench.fn
			var failure error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := fn(); err != nil {
						failure = err
						b.FailNow()
					}
				}
			})
			if failure != nil {
				return nil, fmt.Errorf("%s/%s: %w", bench.name, name, failure)
			}
			rows = append(rows, Row{
				Name:        bench.name,
				Dataset:     name,
				MinSup:      minsup,
				Iterations:  res.N,
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			})
			fmt.Fprintf(os.Stderr, "%-12s %-4s minsup=%-3d %12.0f ns/op %8d allocs/op %10d B/op\n",
				bench.name, name, minsup,
				rows[len(rows)-1].NsPerOp, rows[len(rows)-1].AllocsPerOp, rows[len(rows)-1].BytesPerOp)
		}
	}
	return append(rows, runBitset()...), nil
}

// bitsetSink keeps the compiler from eliminating the pure bitset kernels
// under benchmark.
var bitsetSink int

// runBitset measures the widened bitset kernels in isolation — the
// word-level AND/ANDNOT/popcount loops under every tidset intersection the
// miners perform — so a regression in the 4-words-per-iteration code paths
// gates CI like any other core benchmark.
func runBitset() []Row {
	const nbits = 8192
	rng := rand.New(rand.NewSource(1))
	x, y, dst := bitset.New(nbits), bitset.New(nbits), bitset.New(nbits)
	for i := 0; i < nbits/2; i++ {
		x.Set(rng.Intn(nbits))
		y.Set(rng.Intn(nbits))
	}
	benches := []struct {
		name string
		fn   func()
	}{
		{"BitsetAnd", func() { bitset.AndTo(dst, x, y) }},
		{"BitsetAndNot", func() { bitset.AndNotTo(dst, x, y) }},
		{"BitsetPopcount", func() { bitsetSink = x.Count() }},
		{"BitsetAndCount", func() { bitsetSink = x.AndCount(y) }},
	}
	var rows []Row
	for _, bench := range benches {
		fn := bench.fn
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		rows = append(rows, Row{
			Name:        bench.name,
			Dataset:     "8192b",
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-14s %-5s %22.0f ns/op %8d allocs/op %10d B/op\n",
			bench.name, "8192b",
			rows[len(rows)-1].NsPerOp, rows[len(rows)-1].AllocsPerOp, rows[len(rows)-1].BytesPerOp)
	}
	return rows
}

// submitAndStream pushes one job through the full HTTP request path —
// POST the spec, then read the NDJSON result stream to EOF — and returns
// the number of result lines.
func submitAndStream(baseURL string, spec serve.JobSpec) (int, error) {
	buf, err := json.Marshal(spec)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		return 0, err
	}
	var st serve.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	rr, err := http.Get(baseURL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		return 0, err
	}
	defer rr.Body.Close()
	lines := 0
	sc := bufio.NewScanner(rr.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
	}
	return lines, sc.Err()
}

// queryClient issues repeated POST /v1/query requests with minimal
// per-request allocation, so the benchmark measures the service, not the
// harness: the spec is marshaled once, the body reader and read buffer are
// reused across calls, and the response is consumed with a fixed buffer
// instead of a per-call bufio.Scanner.
type queryClient struct {
	client *http.Client
	url    *url.URL
	header http.Header
	body   []byte
	rd     *bytes.Reader
	buf    []byte
}

func newQueryClient(baseURL string, spec serve.JobSpec) (*queryClient, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	u, err := url.Parse(baseURL + "/v1/query")
	if err != nil {
		return nil, err
	}
	return &queryClient{
		client: http.DefaultClient,
		url:    u,
		header: http.Header{"Content-Type": []string{"application/json"}},
		body:   body,
		rd:     bytes.NewReader(nil),
		buf:    make([]byte, 64<<10),
	}, nil
}

// do runs one query round trip and returns the number of NDJSON result
// lines.
func (q *queryClient) do() (int, error) {
	q.rd.Reset(q.body)
	req := &http.Request{
		Method:        http.MethodPost,
		URL:           q.url,
		Header:        q.header,
		Body:          io.NopCloser(q.rd),
		ContentLength: int64(len(q.body)),
		// GetBody lets the transport safely replay the request when a
		// kept-alive connection turns out dead.
		GetBody: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(q.body)), nil
		},
	}
	resp, err := q.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	lines := 0
	for {
		n, err := resp.Body.Read(q.buf)
		lines += bytes.Count(q.buf[:n], []byte{'\n'})
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("query: status %d", resp.StatusCode)
	}
	return lines, nil
}

// runServe measures cold-versus-warm repeated-request throughput over the
// one-round-trip query endpoint: ServeCold runs against a service with
// caching disabled (every request mines), ServeWarm against one whose
// cache was primed with the same request (every request replays the
// pre-encoded body zero-copy). ServeBudget drives the anytime tier: a
// deadline-bounded top-k query mined on every request — ns/op sits near
// the max_millis budget plus request overhead where the deadline binds,
// and near the exhaust time where the search finishes first. It runs
// cache-off like ServeCold: partial answers never enter the cache anyway
// (the serve suite asserts that), but a small dataset can complete inside
// the budget, and a cached clean run would turn the row into a replay
// measurement. All three go through real HTTP.
func runServe(datasets []string) ([]Row, error) {
	var rows []Row
	for _, name := range datasets {
		spec, ok := synth.BenchSpec(name)
		if !ok {
			return nil, fmt.Errorf("no bench spec %q", name)
		}
		d, err := spec.GenerateDiscrete(10)
		if err != nil {
			return nil, fmt.Errorf("generate %s: %w", name, err)
		}
		minsup := midMinsup(d)
		exactJob := serve.JobSpec{Miner: "farmer", Dataset: name, MinSup: minsup}
		// A low support floor keeps the top-k search space large enough
		// that the 25ms deadline binds on every bench dataset.
		budgetJob := serve.JobSpec{Miner: "topk", Dataset: name, MinSup: 2, K: 20, Measure: "chi2", MaxMillis: 25}

		for _, mode := range []struct {
			rowName    string
			cacheBytes int64
			job        serve.JobSpec
		}{
			{"ServeCold", 0, exactJob},
			{"ServeWarm", serve.DefaultCacheBytes, exactJob},
			{"ServeBudget", 0, budgetJob},
		} {
			reg := serve.NewRegistry()
			if err := reg.Put(name, d); err != nil {
				return nil, err
			}
			mgr := serve.NewManager(reg, 0, 64, mode.cacheBytes)
			ts := httptest.NewServer(serve.NewServer(mgr))
			shutdown := func() {
				ts.Close()
				mgr.Shutdown(context.Background())
			}
			qc, err := newQueryClient(ts.URL, mode.job)
			if err != nil {
				shutdown()
				return nil, fmt.Errorf("%s/%s: %w", mode.rowName, name, err)
			}
			if _, err := qc.do(); err != nil { // warm the cache / JIT the path
				shutdown()
				return nil, fmt.Errorf("%s/%s: %w", mode.rowName, name, err)
			}
			var failure error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := qc.do(); err != nil {
						failure = err
						b.FailNow()
					}
				}
			})
			shutdown()
			if failure != nil {
				return nil, fmt.Errorf("%s/%s: %w", mode.rowName, name, failure)
			}
			rows = append(rows, Row{
				Name:        mode.rowName,
				Dataset:     name,
				MinSup:      mode.job.MinSup,
				Iterations:  res.N,
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			})
			fmt.Fprintf(os.Stderr, "%-12s %-4s minsup=%-3d %12.0f ns/op %8d allocs/op %10d B/op\n",
				mode.rowName, name, mode.job.MinSup,
				rows[len(rows)-1].NsPerOp, rows[len(rows)-1].AllocsPerOp, rows[len(rows)-1].BytesPerOp)
		}
	}
	return rows, nil
}

// qualityFracs are the budget fractions the quality sweep grades;
// qualityGateFrac is the serving target the run gates: at a tenth of the
// exact miner's budget, best-first must keep qualityGateRecall of the
// true top-k on average across the bench datasets.
var qualityFracs = []float64{0.05, 0.10, 0.25, 1.0}

const (
	qualityGateFrac   = 0.10
	qualityGateRecall = 0.9
)

// qualityCases pins each bench dataset's query shape to a point where the
// 10% budget is non-degenerate: the exact search is tens of thousands of
// nodes (so a 10% slice holds a real search, not the root layer) and the
// consequent/k pick a ranking the budgeted search can meaningfully chase.
// LC mines class 1 — its class 0 has too few rows to support any search —
// and PC keeps 30 groups, because its exact top-20 ends inside a tied
// plateau whose members sit structurally late in bound order.
var qualityCases = map[string]struct {
	consequent, k, minsup int
}{
	"BC": {0, 20, 2},
	"LC": {1, 10, 3},
	"CT": {0, 20, 4},
	"PC": {0, 30, 2},
}

// runQuality grades the anytime top-k tier over the bench datasets with
// the difftest quality harness: every (strategy, budget fraction) cell
// scored against the exhausted exact miner, once under node budgets
// (deterministic, machine-independent) and once under wall-clock budgets
// (what a max_millis caller experiences). Both dimensions mine from a
// prepared snapshot, as the serving tier does. gate selects which budget
// dimensions fail the run when best-first at the gate fraction falls
// below the recall floor: CI smoke-gates "nodes" (bit-stable on any
// machine), while the committed report is generated under "both".
func runQuality(datasets []string, gate string) ([]difftest.QualityRow, error) {
	var rows []difftest.QualityRow
	for _, name := range datasets {
		spec, ok := synth.BenchSpec(name)
		if !ok {
			return nil, fmt.Errorf("no bench spec %q", name)
		}
		d, err := spec.GenerateDiscrete(10)
		if err != nil {
			return nil, fmt.Errorf("generate %s: %w", name, err)
		}
		snap, err := farmer.Prepare(d)
		if err != nil {
			return nil, fmt.Errorf("prepare %s: %w", name, err)
		}
		c, ok := qualityCases[name]
		if !ok {
			c.consequent, c.k, c.minsup = 0, 20, midMinsup(d)
		}
		q := difftest.QualitySpec{
			Name: name, D: d, Consequent: c.consequent, K: c.k, MinSup: c.minsup,
			Measure:    core.MeasureChi2,
			Strategies: []core.Strategy{core.StrategyBestFirst, core.StrategyLeap, core.StrategySample},
			Fracs:      qualityFracs,
			Prepared:   snap,
			Reps:       3,
			SampleSeed: 7,
		}
		for _, wallClock := range []bool{false, true} {
			q.WallClock = wallClock
			got, err := difftest.RunQuality(q)
			if err != nil {
				return nil, fmt.Errorf("quality %s: %w", name, err)
			}
			for _, r := range got {
				fmt.Fprintf(os.Stderr, "%-10s %-4s %-6s frac=%.2f recall=%.3f regret=%.3f nodes=%d/%d\n",
					r.Strategy, r.Dataset, r.BudgetKind, r.BudgetFrac, r.Recall, r.Regret, r.NodesExpanded, r.ExactNodes)
			}
			rows = append(rows, got...)
		}
	}
	for _, kind := range []string{"nodes", "millis"} {
		mean := difftest.MeanRecall(rows, func(r difftest.QualityRow) bool {
			return r.Strategy == "best_first" && r.BudgetKind == kind && r.BudgetFrac == qualityGateFrac
		})
		fmt.Fprintf(os.Stderr, "best_first mean recall at the %.0f%% %s budget: %.3f\n",
			100*qualityGateFrac, kind, mean)
		if gate != "both" && gate != kind {
			continue
		}
		if mean < qualityGateRecall {
			return nil, fmt.Errorf("best_first mean recall %.3f at the %.0f%% %s budget, want >= %.2f",
				mean, 100*qualityGateFrac, kind, qualityGateRecall)
		}
	}
	return rows, nil
}

// runCluster measures distributed mining wall clock through real HTTP:
// ClusterSingle is a FARMER job on a standalone service (the single-node
// parallel runner), Cluster2W the same job through a coordinator with two
// local cluster workers — same machine, so the delta is pure protocol,
// serialization and merge overhead, the floor a real multi-host
// deployment pays before network time. Caching is disabled so every
// request mines.
func runCluster(datasets []string) ([]Row, error) {
	var rows []Row
	for _, name := range datasets {
		spec, ok := synth.BenchSpec(name)
		if !ok {
			return nil, fmt.Errorf("no bench spec %q", name)
		}
		d, err := spec.GenerateDiscrete(10)
		if err != nil {
			return nil, fmt.Errorf("generate %s: %w", name, err)
		}
		minsup := midMinsup(d)
		job := serve.JobSpec{Miner: "farmer", Dataset: name, MinSup: minsup, Workers: runtime.GOMAXPROCS(0)}

		for _, mode := range []struct {
			rowName string
			workers int
		}{
			{"ClusterSingle", 0},
			{"Cluster2W", 2},
		} {
			reg := serve.NewRegistry()
			if err := reg.Put(name, d); err != nil {
				return nil, err
			}
			mgr := serve.NewManager(reg, 0, 64, 0)
			srv := serve.NewServer(mgr)
			var coord *cluster.Coordinator
			var cancelWorkers context.CancelFunc = func() {}
			if mode.workers > 0 {
				coord = cluster.NewCoordinator(mgr, cluster.Options{Chunks: 2 * mode.workers})
				coord.RegisterRoutes(srv)
			}
			ts := httptest.NewServer(srv)
			if mode.workers > 0 {
				var ctx context.Context
				ctx, cancelWorkers = context.WithCancel(context.Background())
				for i := 0; i < mode.workers; i++ {
					w := cluster.NewWorker(ts.URL, cluster.WorkerOptions{
						ID:           fmt.Sprintf("bench-w%d", i),
						PollInterval: time.Millisecond,
					})
					go func() { _ = w.Run(ctx) }()
				}
				deadline := time.Now().Add(5 * time.Second)
				for coord.ActiveWorkers() < mode.workers && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
			}
			shutdown := func() {
				cancelWorkers()
				mgr.Shutdown(context.Background())
				if coord != nil {
					coord.Close()
				}
				ts.Close()
			}
			if _, err := submitAndStream(ts.URL, job); err != nil {
				shutdown()
				return nil, fmt.Errorf("%s/%s: %w", mode.rowName, name, err)
			}
			var failure error
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := submitAndStream(ts.URL, job); err != nil {
						failure = err
						b.FailNow()
					}
				}
			})
			shutdown()
			if failure != nil {
				return nil, fmt.Errorf("%s/%s: %w", mode.rowName, name, failure)
			}
			rows = append(rows, Row{
				Name:        mode.rowName,
				Dataset:     name,
				MinSup:      minsup,
				Iterations:  res.N,
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			})
			fmt.Fprintf(os.Stderr, "%-13s %-4s minsup=%-3d %12.0f ns/op %8d allocs/op %10d B/op\n",
				mode.rowName, name, minsup,
				rows[len(rows)-1].NsPerOp, rows[len(rows)-1].AllocsPerOp, rows[len(rows)-1].BytesPerOp)
		}
	}
	return rows, nil
}

// parseMetric expands the -compare metric selector into the set of
// columns that gate failure: a comma-separated combination of "ns",
// "allocs" and "bytes", with "both" kept as the legacy spelling of
// "ns,allocs".
func parseMetric(metric string) (map[string]bool, error) {
	if metric == "both" {
		return map[string]bool{"ns": true, "allocs": true}, nil
	}
	gate := map[string]bool{}
	for _, m := range strings.Split(metric, ",") {
		switch m = strings.TrimSpace(m); m {
		case "ns", "allocs", "bytes":
			gate[m] = true
		default:
			return nil, fmt.Errorf("unknown metric %q (want a comma-separated combination of ns, allocs, bytes — or both)", m)
		}
	}
	return gate, nil
}

// compare prints per-benchmark deltas between two measurement files
// (matched by name+dataset) and reports whether any regression exceeds the
// thresholds. metric selects which columns can fail the comparison (see
// parseMetric) — CI uses "allocs" and "allocs,bytes" for hard gates
// because allocation counts and sizes are deterministic while
// shared-runner timings are not. match, when non-nil, restricts gating
// (not reporting) to benchmark keys it accepts. Benchmarks present in
// only one file are reported but never fail the comparison — the guard is
// for regressions, not coverage drift.
func compare(oldPath, newPath string, frac float64, metric string, match *regexp.Regexp, w io.Writer) (bool, error) {
	gate, err := parseMetric(metric)
	if err != nil {
		return false, err
	}
	load := func(path string) (map[string]Row, []string, error) {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var rows []Row
		if err := json.Unmarshal(buf, &rows); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]Row, len(rows))
		var order []string
		for _, r := range rows {
			k := r.Name + "/" + r.Dataset
			if _, dup := m[k]; !dup {
				order = append(order, k)
			}
			m[k] = r
		}
		return m, order, nil
	}
	oldRows, _, err := load(oldPath)
	if err != nil {
		return false, err
	}
	newRows, order, err := load(newPath)
	if err != nil {
		return false, err
	}

	pct := func(oldV, newV float64) float64 {
		if oldV == 0 {
			return 0
		}
		return 100 * (newV - oldV) / oldV
	}
	regressed := false
	fmt.Fprintf(w, "%-22s %12s %12s %12s %12s %12s %12s\n",
		"benchmark", "ns/op old", "ns/op new", "allocs old", "allocs new", "B/op old", "B/op new")
	for _, k := range order {
		n := newRows[k]
		o, ok := oldRows[k]
		if !ok {
			fmt.Fprintf(w, "%-22s %12s %12.0f %12s %12d %12s %12d   (new benchmark)\n",
				k, "-", n.NsPerOp, "-", n.AllocsPerOp, "-", n.BytesPerOp)
			continue
		}
		dn := pct(o.NsPerOp, n.NsPerOp)
		da := pct(float64(o.AllocsPerOp), float64(n.AllocsPerOp))
		db := pct(float64(o.BytesPerOp), float64(n.BytesPerOp))
		nsBad := gate["ns"] && dn > 100*frac
		allocsBad := gate["allocs"] && da > 100*frac
		bytesBad := gate["bytes"] && db > 100*frac
		marker := ""
		if (nsBad || allocsBad || bytesBad) && (match == nil || match.MatchString(k)) {
			marker = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-22s %12.0f %12.0f %12d %12d %12d %12d   ns %+6.1f%%  allocs %+6.1f%%  bytes %+6.1f%%%s\n",
			k, o.NsPerOp, n.NsPerOp, o.AllocsPerOp, n.AllocsPerOp, o.BytesPerOp, n.BytesPerOp, dn, da, db, marker)
	}
	for k, o := range oldRows {
		if _, ok := newRows[k]; !ok {
			fmt.Fprintf(w, "%-22s %12.0f %12s %12d %12s %12d %12s   (missing from new)\n",
				k, o.NsPerOp, "-", o.AllocsPerOp, "-", o.BytesPerOp, "-")
		}
	}
	return regressed, nil
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file")
	datasets := flag.String("datasets", "BC,LC,CT,PC,ALL", "comma-separated bench dataset names")
	doServe := flag.Bool("serve", false, "measure the farmerd request path (cold vs warm cache, plus a budgeted anytime query) instead of the core miners")
	doQuality := flag.Bool("quality", false, "run the anytime-tier quality harness (top-k recall/regret vs budget) instead of timing benchmarks")
	qualityGate := flag.String("quality-gate", "both", "with -quality, which budget dimensions fail the run below the recall floor: both, nodes (deterministic, what CI gates) or millis")
	doCluster := flag.Bool("cluster", false, "also measure distributed mining (single-node vs 2 local cluster workers)")
	doCompare := flag.Bool("compare", false, "compare two measurement files: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.30, "with -compare, fail when a gated metric grew by more than this fraction")
	metric := flag.String("metric", "both", "with -compare, which metrics gate failure: a comma-separated combination of ns, allocs, bytes (or both = ns,allocs)")
	matchExpr := flag.String("match", "", "with -compare, regexp limiting which name/dataset rows gate failure (all rows are still reported)")
	flag.Parse()

	if *doCompare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-threshold 0.30] [-metric ns,allocs,bytes] [-match re] old.json new.json")
			os.Exit(2)
		}
		if _, err := parseMetric(*metric); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -metric:", err)
			os.Exit(2)
		}
		var match *regexp.Regexp
		if *matchExpr != "" {
			var err error
			if match, err = regexp.Compile(*matchExpr); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: -match:", err)
				os.Exit(2)
			}
		}
		regressed, err := compare(flag.Arg(0), flag.Arg(1), *threshold, *metric, match, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			fmt.Fprintf(os.Stderr, "benchjson: regression beyond %.0f%% threshold\n", 100**threshold)
			os.Exit(1)
		}
		return
	}

	if *doQuality {
		switch *qualityGate {
		case "both", "nodes", "millis":
		default:
			fmt.Fprintln(os.Stderr, "benchjson: -quality-gate must be both, nodes or millis")
			os.Exit(2)
		}
		rows, err := runQuality(strings.Split(*datasets, ","), *qualityGate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		buf, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d measurements)\n", *out, len(rows))
		return
	}

	measure := run
	if *doServe {
		measure = runServe
	}
	rows, err := measure(strings.Split(*datasets, ","))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *doCluster {
		crows, err := runCluster(strings.Split(*datasets, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rows = append(rows, crows...)
	}
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d measurements)\n", *out, len(rows))
}
