// Command farmerd is the long-running mining service: it keeps datasets
// registered in memory and runs mining jobs for any of the repository's
// miners over an HTTP/JSON API. Submit jobs with POST /v1/jobs, watch
// them with GET /v1/jobs/{id}, stream results as NDJSON from
// GET /v1/jobs/{id}/results, and cancel with DELETE /v1/jobs/{id}.
// SIGINT/SIGTERM drains running jobs before exiting; jobs still live
// when the drain timeout expires are cancelled (each stops within one
// node expansion).
//
// Usage:
//
//	farmerd [-addr :8077] [-workers N] [-queue N] [-data DIR] [-buckets N]
//	        [-drain 30s] [-cache-bytes N] [-store DIR] [-store-bytes N]
//	        [-pprof-addr addr] [-coordinator] [-worker-of URL]
//	        [-worker-id ID] [-worker-key KEY] [-lease-ttl 15s]
//	        [-cluster-chunks N] [-keys FILE] [-audit FILE] [-metrics]
//
// -keys FILE turns on multi-tenant authentication: FILE is a JSON keys
// file ({"tenants": [{"name", "key", "weight", "rate_per_sec", "burst",
// "max_inflight", "max_cost"}, ...], "anonymous": {...}}) and every
// request outside /healthz, /version and /metrics must then present a
// listed key via "Authorization: Bearer <key>" or "X-API-Key". SIGHUP
// re-reads the file without dropping queued jobs or limiter state; an
// invalid file leaves the previous keys in force. Without -keys the
// daemon runs open (one unlimited anonymous tenant).
//
// -audit FILE appends one JSON object per security-relevant event
// (submissions, completions, auth failures, quota/admission rejections,
// key reloads) to FILE ("-" = stderr). -metrics=false disables the
// GET /metrics Prometheus endpoint and its request instrumentation.
//
// -data preloads every dataset file in DIR at startup: *.txt in the
// transactions format, *.csv as expression matrices discretized into
// -buckets equal-depth buckets. The registry can also be filled at
// runtime with PUT /v1/datasets/{name}.
//
// -store makes the registry durable: every registered dataset's compiled
// snapshot is persisted to DIR in the versioned binary format (atomic
// write-then-rename, whole-file checksum), and a restarted daemon serves
// everything the store holds without re-upload or recompilation —
// snapshots are decoded lazily on first use and the decoded working set
// is bounded by -store-bytes with LRU eviction. The registry generation
// counter survives restarts, so the result-cache invalidation contract
// (re-registering a name can never revive stale cached results) holds
// across them. -data preloads write through to the store.
//
// Repeated identical job submissions are served from a byte-bounded
// result cache (-cache-bytes, 0 disables) and flagged "cached": true in
// their status; re-registering a dataset name invalidates its cached
// results. -pprof-addr exposes net/http/pprof on a separate listener for
// live profiling (off by default; never exposed on the API address).
//
// -coordinator makes this daemon a cluster coordinator: jobs submitted to
// its API are sharded into partition leases over /cluster/v1 endpoints on
// the same listener, mined by worker daemons, and merged back into results
// identical to a single-node run. With no joined workers it behaves like a
// standalone daemon. -worker-of URL makes this daemon a worker of the
// coordinator at URL: it polls for leases, resolves datasets by snapshot
// digest (from its own -store when possible, fetching otherwise), and
// reports partial results. -lease-ttl and -cluster-chunks tune coordinator
// failover and initial lease granularity; -worker-id names the worker
// (default hostname-pid).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/store"
)

// preload registers every recognized dataset file in dir under its
// basename (extension stripped).
func preload(reg *serve.Registry, dir string, buckets int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var format string
		switch strings.ToLower(filepath.Ext(e.Name())) {
		case ".txt", ".tr":
			format = "transactions"
		case ".csv":
			format = "matrix"
		default:
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
		d, err := reg.Load(name, format, buckets, f)
		f.Close()
		if err != nil {
			return err
		}
		log.Printf("dataset %s: %d rows, %d items, classes %v",
			name, d.NumRows(), d.NumItems, d.ClassNames)
	}
	return nil
}

// loadKeys reads and parses the tenant keys file.
func loadKeys(path string) (serve.KeysFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return serve.KeysFile{}, err
	}
	return serve.ParseKeysFile(data)
}

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	workers := flag.Int("workers", 0, "mining worker pool size (<= 0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "job queue depth; full queue returns 503")
	data := flag.String("data", "", "directory of datasets to preload (*.txt transactions, *.csv matrices)")
	buckets := flag.Int("buckets", 10, "equal-depth buckets for preloaded matrix datasets")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout before cancelling jobs")
	cacheBytes := flag.Int64("cache-bytes", serve.DefaultCacheBytes, "result cache budget in bytes (0 disables caching)")
	storeDir := flag.String("store", "", "durable snapshot store directory (empty = RAM-only registry)")
	storeBytes := flag.Int64("store-bytes", store.DefaultCacheBytes, "decoded-snapshot LRU budget in bytes for -store (0 keeps nothing decoded)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables)")
	coordinator := flag.Bool("coordinator", false, "shard submitted jobs across cluster workers")
	workerOf := flag.String("worker-of", "", "join the cluster coordinated by this base URL")
	workerID := flag.String("worker-id", "", "worker name in the cluster (default hostname-pid)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "coordinator lease deadline; expired leases requeue")
	clusterChunks := flag.Int("cluster-chunks", 8, "initial partition leases per distributed FARMER job")
	keysPath := flag.String("keys", "", "tenant keys file (JSON); requests must then present an API key. SIGHUP reloads")
	auditPath := flag.String("audit", "", "append JSON audit events to this file (\"-\" = stderr; empty disables)")
	metricsOn := flag.Bool("metrics", true, "expose GET /metrics and request instrumentation")
	workerKey := flag.String("worker-key", "", "API key presented to the -worker-of coordinator")
	flag.Parse()

	var reg *serve.Registry
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{CacheBytes: *storeBytes})
		if err != nil {
			log.Fatalf("open store %s: %v", *storeDir, err)
		}
		defer st.Close()
		reg = serve.NewRegistryWithStore(st)
		if names := reg.Names(); len(names) > 0 {
			log.Printf("store %s: restored %d dataset(s) at generation %d: %v",
				*storeDir, len(names), reg.Generation(), names)
		}
	} else {
		reg = serve.NewRegistry()
	}
	if *data != "" {
		if err := preload(reg, *data, *buckets); err != nil {
			log.Fatalf("preload %s: %v", *data, err)
		}
	}
	mgr := serve.NewManager(reg, *workers, *queue, *cacheBytes)

	var tenants *serve.Tenants
	if *keysPath != "" {
		cfg, err := loadKeys(*keysPath)
		if err != nil {
			log.Fatalf("farmerd: keys %s: %v", *keysPath, err)
		}
		tenants, err = serve.NewTenantsFromConfig(cfg)
		if err != nil {
			log.Fatalf("farmerd: keys %s: %v", *keysPath, err)
		}
		mgr.SetTenants(tenants)
		log.Printf("farmerd: %d tenant key(s) loaded from %s", len(cfg.Tenants), *keysPath)
	}

	var auditLog *serve.AuditLogger
	if *auditPath != "" {
		var w io.Writer
		if *auditPath == "-" {
			w = os.Stderr
		} else {
			f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("farmerd: audit %s: %v", *auditPath, err)
			}
			defer f.Close()
			w = f
		}
		auditLog = serve.NewAuditLogger(w)
		mgr.SetAudit(auditLog)
	}

	var srvOpts []serve.ServerOption
	if !*metricsOn {
		srvOpts = append(srvOpts, serve.WithoutMetrics())
	}
	srv := serve.NewServer(mgr, srvOpts...)
	if *coordinator {
		coord := cluster.NewCoordinator(mgr, cluster.Options{LeaseTTL: *leaseTTL, Chunks: *clusterChunks})
		coord.RegisterRoutes(srv)
		if m := srv.Metrics(); m != nil {
			coord.RegisterMetrics(m)
		}
		defer coord.Close()
		log.Printf("farmerd: coordinating cluster jobs (lease TTL %v, %d chunks)", *leaseTTL, *clusterChunks)
	}

	if *keysPath != "" {
		// SIGHUP re-reads the keys file in place: tenants keep their limiter
		// state and queued jobs across a rotation; a broken file is logged
		// and the previous registry stays in force.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				cfg, err := loadKeys(*keysPath)
				if err == nil {
					err = tenants.Reload(cfg)
				}
				if err != nil {
					log.Printf("farmerd: keys reload: %v (previous keys kept)", err)
					continue
				}
				auditLog.Log(serve.AuditEvent{Event: "keys_reloaded", Detail: fmt.Sprintf("%d tenants", len(cfg.Tenants))})
				log.Printf("farmerd: reloaded %d tenant key(s) from %s", len(cfg.Tenants), *keysPath)
			}
		}()
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	if *pprofAddr != "" {
		// pprof rides on its own listener and the default mux (which the
		// net/http/pprof import populates), so profiling endpoints are never
		// reachable through the public API address.
		go func() {
			log.Printf("farmerd pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("farmerd: pprof: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("farmerd: %v", err)
	}
	log.Printf("farmerd listening on %s", ln.Addr())
	errc := make(chan error, 1)
	go func() {
		errc <- hs.Serve(ln)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *workerOf != "" {
		wid := *workerID
		if wid == "" {
			host, _ := os.Hostname()
			wid = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		w := cluster.NewWorker(*workerOf, cluster.WorkerOptions{
			ID:      wid,
			Store:   st,
			Workers: *workers,
			APIKey:  *workerKey,
		})
		log.Printf("farmerd: worker %s joining cluster at %s", wid, *workerOf)
		go func() { _ = w.Run(ctx) }()
	}

	select {
	case err := <-errc:
		log.Fatalf("farmerd: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("farmerd: draining (up to %v)", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain jobs first so live result streams can finish, then close the
	// HTTP listener and remaining connections.
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Printf("farmerd: drain deadline hit, jobs cancelled")
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("farmerd: http shutdown: %v", err)
	}
	fmt.Println("farmerd: bye")
}
