package main_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	farmer "repro"
	"repro/internal/serve"
)

const paperExample = `
C : a b c l o s
C : a d e h p l r
C : a c e h o q t
N : a e f h p r
N : b d f g l q s t
`

// slowExample mirrors internal/serve's slow dataset: a FARMER minsup=1
// run of around a second, so a DELETE can land mid-job.
func slowExample() string {
	const rows, items = 70, 100
	rng := rand.New(rand.NewSource(4041))
	var b strings.Builder
	for i := 0; i < rows; i++ {
		if i%2 == 0 {
			b.WriteString("C :")
		} else {
			b.WriteString("N :")
		}
		for it := 0; it < items; it++ {
			p := 0.35
			if i%2 == 0 && it < 3 {
				p = 0.9
			}
			if rng.Float64() < p {
				fmt.Fprintf(&b, " g%d", it)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// startDaemon builds the farmerd binary, boots it on an ephemeral port
// with the paper dataset preloaded, and returns its base URL plus the
// running command for shutdown.
func startDaemon(t *testing.T) (string, *exec.Cmd) {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "farmerd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	dataDir := filepath.Join(dir, "data")
	if err := os.Mkdir(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dataDir, "paper.txt"), []byte(paperExample), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", dataDir, "-workers", "2", "-drain", "10s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = os.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	// The daemon logs the resolved listen address once the socket is open.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "[farmerd]", line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrc <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, cmd
	case <-time.After(15 * time.Second):
		t.Fatal("farmerd did not report its listen address")
		return "", nil
	}
}

func postJob(t *testing.T, baseURL string, spec serve.JobSpec) serve.JobStatus {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs: status %d: %s", resp.StatusCode, body)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, baseURL, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFor(t *testing.T, baseURL, id string, pred func(serve.JobStatus) bool) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if st := getStatus(t, baseURL, id); pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s: timed out, last status %+v", id, getStatus(t, baseURL, id))
	return serve.JobStatus{}
}

func readStream(t *testing.T, baseURL, id string) []string {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Strip (and require) the end-frame trailer so callers compare result
	// records only.
	if len(lines) == 0 || !strings.HasPrefix(lines[len(lines)-1], `{"end":true`) {
		t.Fatalf("stream missing end frame, got %d lines", len(lines))
	}
	return lines[:len(lines)-1]
}

func names(d *farmer.Dataset, items []farmer.Item) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = d.ItemName(it)
	}
	return out
}

// TestFarmerdEndToEnd boots the real daemon, mines over HTTP, checks the
// streams against direct library calls, cancels a long job mid-run, and
// shuts the daemon down cleanly with SIGTERM.
func TestFarmerdEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e smoke skipped in -short mode")
	}
	baseURL, cmd := startDaemon(t)

	// Liveness and preloaded dataset.
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	d, err := farmer.ReadTransactions(strings.NewReader(paperExample))
	if err != nil {
		t.Fatal(err)
	}

	// FARMER over HTTP == FARMER in-process, record for record.
	fj := postJob(t, baseURL, serve.JobSpec{
		Miner: "farmer", Dataset: "paper", Class: "C",
		MinSup: 2, MinConf: 0.7, LowerBounds: true,
	})
	waitFor(t, baseURL, fj.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	var wantF []string
	opt := farmer.MineOptions{MinSup: 2, MinConf: 0.7, ComputeLowerBounds: true}
	opt.OnGroup = func(g farmer.RuleGroup) error {
		rec := serve.GroupRecord{
			Antecedent: names(d, g.Antecedent),
			SupPos:     g.SupPos,
			SupNeg:     g.SupNeg,
			Confidence: g.Confidence,
			Chi:        g.Chi,
		}
		for _, lb := range g.LowerBounds {
			rec.LowerBounds = append(rec.LowerBounds, names(d, lb))
		}
		buf, err := json.Marshal(rec)
		wantF = append(wantF, string(buf))
		return err
	}
	if _, err := farmer.RunFARMER(context.Background(), d, d.ClassIndex("C"), opt); err != nil {
		t.Fatal(err)
	}
	gotF := readStream(t, baseURL, fj.ID)
	if len(gotF) != len(wantF) {
		t.Fatalf("farmer stream: %d lines, library emits %d", len(gotF), len(wantF))
	}
	for i := range gotF {
		if gotF[i] != wantF[i] {
			t.Fatalf("farmer stream line %d:\n got %s\nwant %s", i, gotF[i], wantF[i])
		}
	}

	// CHARM over HTTP == CHARM in-process.
	cj := postJob(t, baseURL, serve.JobSpec{Miner: "charm", Dataset: "paper", MinSup: 2})
	waitFor(t, baseURL, cj.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	var wantC []string
	copt := farmer.CharmOptions{MinSup: 2}
	copt.OnClosed = func(c farmer.ClosedSet) error {
		buf, err := json.Marshal(serve.ClosedRecord{Items: names(d, c.Items), Support: c.Support})
		wantC = append(wantC, string(buf))
		return err
	}
	if _, err := farmer.RunCHARM(context.Background(), d, copt); err != nil {
		t.Fatal(err)
	}
	gotC := readStream(t, baseURL, cj.ID)
	if len(gotC) != len(wantC) {
		t.Fatalf("charm stream: %d lines, library emits %d", len(gotC), len(wantC))
	}
	for i := range gotC {
		if gotC[i] != wantC[i] {
			t.Fatalf("charm stream line %d:\n got %s\nwant %s", i, gotC[i], wantC[i])
		}
	}

	// Upload a long-running dataset, cancel mid-job, and confirm the stop
	// lands within one node expansion (well under the full ~1.5s run).
	req, err := http.NewRequest(http.MethodPut, baseURL+"/v1/datasets/slow", strings.NewReader(slowExample()))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT dataset: %d", resp.StatusCode)
	}
	sj := postJob(t, baseURL, serve.JobSpec{Miner: "farmer", Dataset: "slow", MinSup: 1})
	waitFor(t, baseURL, sj.ID, func(s serve.JobStatus) bool {
		return s.State == serve.StateRunning && s.Emitted > 0
	})
	req, _ = http.NewRequest(http.MethodDelete, baseURL+"/v1/jobs/"+sj.ID, nil)
	cancelledAt := time.Now()
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := waitFor(t, baseURL, sj.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if wait := time.Since(cancelledAt); wait > 5*time.Second {
		t.Fatalf("cancellation took %v", wait)
	}
	if final.State != serve.StateCancelled {
		t.Fatalf("cancelled job state %q", final.State)
	}
	if final.Stats == nil || final.Stats.NodesVisited == 0 {
		t.Fatalf("cancelled job lost its partial stats: %+v", final.Stats)
	}

	// The Prometheus scrape must be well-formed text exposition and carry
	// the request/job/queue/cache/tenant series after the traffic above.
	resp, err = http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	samples, err := serve.CheckPromText(bytes.NewReader(metricsBody))
	if err != nil {
		t.Fatalf("malformed /metrics exposition: %v\n%s", err, metricsBody)
	}
	if samples == 0 {
		t.Fatal("/metrics scrape carried no samples")
	}
	for _, want := range []string{
		`farmerd_requests_total{route="/v1/jobs",status="2xx"}`,
		"farmerd_jobs_submitted_total",
		`farmerd_jobs_finished_total{state="done"}`,
		"farmerd_job_queue_wait_seconds_count",
		"farmerd_job_run_seconds_count",
		"farmerd_queue_depth",
		"farmerd_cache_entries",
		`farmerd_tenant_jobs_total{tenant="anonymous"}`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing series %s", want)
		}
	}

	// SIGTERM drains and exits cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("farmerd exited uncleanly: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("farmerd did not exit after SIGTERM")
	}
}
