package main_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// buildFarmerd compiles the daemon once for a test, returning the binary
// path.
func buildFarmerd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "farmerd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startProc boots one farmerd process with the given extra flags and
// returns its base URL. Stderr is scanned for the resolved listen address
// and forwarded for debugging.
func startProc(t *testing.T, bin, tag string, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = os.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(os.Stderr, "[%s] %s\n", tag, line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrc <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return "http://" + addr, cmd
	case <-time.After(15 * time.Second):
		t.Fatalf("%s did not report its listen address", tag)
		return "", nil
	}
}

// clusterStats polls GET /cluster/v1/stats on a coordinator.
func clusterStats(t *testing.T, baseURL string) map[string]int {
	t.Helper()
	resp, err := http.Get(baseURL + "/cluster/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFarmerdClusterEndToEnd is the cluster smoke: a coordinator and two
// worker daemons as real processes over one shared store directory, a
// FARMER and a CHARM job mined distributed and compared byte-for-byte
// against a standalone daemon, with one worker SIGKILLed mid-FARMER-run —
// the job must still complete, correctly.
func TestFarmerdClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e smoke skipped in -short mode")
	}
	bin := buildFarmerd(t)

	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")
	if err := os.Mkdir(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dataDir, "paper.txt"), []byte(paperExample), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dataDir, "slow.txt"), []byte(slowExample()), 0o644); err != nil {
		t.Fatal(err)
	}

	// The baseline: a standalone daemon, no cluster flags at all.
	soloURL, _ := startProc(t, bin, "solo", "-data", dataDir, "-workers", "2", "-drain", "5s")

	// The cluster: one coordinator, two workers sharing one store dir (so
	// dataset shipping exercises the store-backed fetch-or-load path).
	coordURL, _ := startProc(t, bin, "coord",
		"-data", dataDir, "-workers", "2", "-drain", "5s",
		"-coordinator", "-lease-ttl", "1s", "-cluster-chunks", "6")
	storeDir := filepath.Join(dir, "workerstore")
	_, w1 := startProc(t, bin, "w1",
		"-worker-of", coordURL, "-worker-id", "w1", "-store", storeDir, "-drain", "1s")
	_, _ = startProc(t, bin, "w2",
		"-worker-of", coordURL, "-worker-id", "w2", "-store", storeDir, "-drain", "1s")

	deadline := time.Now().Add(15 * time.Second)
	for clusterStats(t, coordURL)["active_workers"] < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never joined: %v", clusterStats(t, coordURL))
		}
		time.Sleep(50 * time.Millisecond)
	}

	runBoth := func(spec serve.JobSpec) (cluster, solo []string) {
		t.Helper()
		cj := postJob(t, coordURL, spec)
		sj := postJob(t, soloURL, spec)
		cst := waitFor(t, coordURL, cj.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
		sst := waitFor(t, soloURL, sj.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
		if cst.State != serve.StateDone {
			t.Fatalf("cluster job %s ended %q: %s", cj.ID, cst.State, cst.Error)
		}
		if sst.State != serve.StateDone {
			t.Fatalf("solo job %s ended %q: %s", sj.ID, sst.State, sst.Error)
		}
		return readStream(t, coordURL, cj.ID), readStream(t, soloURL, sj.ID)
	}

	compare := func(label string, cluster, solo []string) {
		t.Helper()
		if len(cluster) != len(solo) {
			t.Fatalf("%s: cluster emitted %d records, solo %d", label, len(cluster), len(solo))
		}
		for i := range cluster {
			if cluster[i] != solo[i] {
				t.Fatalf("%s: record %d differs\ncluster: %s\nsolo:    %s", label, i, cluster[i], solo[i])
			}
		}
	}

	// FARMER over the paper example: partition leases.
	cr, sr := runBoth(serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 3, Workers: -1})
	if len(cr) == 0 {
		t.Fatal("farmer job emitted nothing")
	}
	compare("farmer", cr, sr)

	// CHARM: a whole-universe lease placed on one worker.
	cr, sr = runBoth(serve.JobSpec{Miner: "charm", Dataset: "paper", MinSup: 2})
	if len(cr) == 0 {
		t.Fatal("charm job emitted nothing")
	}
	compare("charm", cr, sr)

	// Worker-loss run: submit the slow FARMER job, SIGKILL one worker while
	// it is mid-lease, and require the survivors (plus the reaper's
	// re-queues) to finish the job with the exact single-node result.
	cj := postJob(t, coordURL, serve.JobSpec{Miner: "farmer", Dataset: "slow", MinSup: 1, Workers: -1})
	waitFor(t, coordURL, cj.ID, func(s serve.JobStatus) bool { return s.State == serve.StateRunning })
	time.Sleep(300 * time.Millisecond) // let leases land on both workers
	if err := w1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cst := waitFor(t, coordURL, cj.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if cst.State != serve.StateDone {
		t.Fatalf("cluster job after worker kill ended %q: %s", cst.State, cst.Error)
	}

	sj := postJob(t, soloURL, serve.JobSpec{Miner: "farmer", Dataset: "slow", MinSup: 1, Workers: -1})
	waitFor(t, soloURL, sj.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	compare("farmer after worker kill", readStream(t, coordURL, cj.ID), readStream(t, soloURL, sj.ID))
}
