package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	farmer "repro"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestRunRequiresSpec(t *testing.T) {
	if _, _, err := runCLI(t); err == nil {
		t.Fatal("no spec accepted")
	}
}

func TestRunRejections(t *testing.T) {
	cases := [][]string{
		{"-preset", "nope"},
		{"-preset", "CT", "-scale", "huge"},
		{"-preset", "CT", "-format", "parquet"},
		{"-rows", "10", "-cols", "5", "-class1", "20"}, // invalid spec
	}
	for _, args := range cases {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunMatrixOutputParses(t *testing.T) {
	out, errOut, err := runCLI(t, "-preset", "CT", "-format", "matrix")
	if err != nil {
		t.Fatal(err)
	}
	m, err := farmer.ReadMatrixCSV(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output does not round-trip: %v", err)
	}
	if m.NumRows() == 0 || m.NumCols() == 0 {
		t.Fatal("empty matrix")
	}
	if !strings.Contains(errOut, "datagen: CT") {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestRunTransactionsOutputParses(t *testing.T) {
	out, errOut, err := runCLI(t, "-preset", "CT", "-format", "transactions", "-describe")
	if err != nil {
		t.Fatal(err)
	}
	d, err := farmer.ReadTransactions(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output does not round-trip: %v", err)
	}
	if d.NumRows() == 0 {
		t.Fatal("empty dataset")
	}
	if !strings.Contains(errOut, "item support") {
		t.Fatalf("describe missing from stderr: %q", errOut)
	}
}

func TestRunSeedOverrideChangesData(t *testing.T) {
	a, _, err := runCLI(t, "-preset", "CT", "-format", "matrix")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := runCLI(t, "-preset", "CT", "-format", "matrix", "-seed", "777")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("seed override produced identical output")
	}
	c, _, err := runCLI(t, "-preset", "CT", "-format", "matrix", "-seed", "777")
	if err != nil {
		t.Fatal(err)
	}
	if b != c {
		t.Fatal("same seed produced different output")
	}
}

func TestRunCustomSpec(t *testing.T) {
	out, _, err := runCLI(t, "-rows", "12", "-cols", "20", "-class1", "6", "-format", "transactions")
	if err != nil {
		t.Fatal(err)
	}
	d, err := farmer.ReadTransactions(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 12 {
		t.Fatalf("rows = %d", d.NumRows())
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	_, _, err := runCLI(t, "-preset", "CT", "-format", "matrix", "-o", path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := openAndRead(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(f, "label,") {
		t.Fatalf("file content = %q...", f[:20])
	}
}

func TestRunTable2Scale(t *testing.T) {
	out, _, err := runCLI(t, "-preset", "BC", "-scale", "table2", "-format", "matrix")
	if err != nil {
		t.Fatal(err)
	}
	m, err := farmer.ReadMatrixCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 48 { // BC table2 spec halves the paper's 97 rows
		t.Fatalf("rows = %d, want 48", m.NumRows())
	}
}

func openAndRead(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}
