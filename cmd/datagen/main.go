// Command datagen generates synthetic microarray datasets — the stand-ins
// for the paper's five clinical datasets — as CSV expression matrices or
// discretized transactional files.
//
// Usage:
//
//	datagen -preset CT [-scale bench|paper|table2] [-format matrix|transactions]
//	        [-buckets 10] [-seed N] [-describe] [-o FILE]
//	datagen -rows 60 -cols 200 -class1 30 -informative 20 [...]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	farmer "repro"
	"repro/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset      = fs.String("preset", "", "preset dataset: BC, LC, CT, PC or ALL")
		scale       = fs.String("scale", "bench", "preset scale: bench|paper|table2")
		format      = fs.String("format", "matrix", "output: matrix (CSV) or transactions (equal-depth discretized)")
		buckets     = fs.Int("buckets", 10, "equal-depth buckets for -format transactions")
		out         = fs.String("o", "", "output file (default stdout)")
		seed        = fs.Int64("seed", 0, "override the preset seed (0 keeps it)")
		describe    = fs.Bool("describe", false, "print dataset summary statistics to stderr")
		rows        = fs.Int("rows", 0, "custom: number of samples")
		cols        = fs.Int("cols", 0, "custom: number of genes")
		class1      = fs.Int("class1", 0, "custom: rows of class 1")
		informative = fs.Int("informative", 10, "custom: informative genes")
		effect      = fs.Float64("effect", 2.0, "custom: shift strength (standard deviations)")
		flip        = fs.Float64("flip", 0.1, "custom: per-row shift failure probability")
		quantize    = fs.Float64("quantize", 0, "custom: value quantization step (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := resolveSpec(*preset, *scale, *rows, *cols, *class1, *informative, *effect, *flip, *quantize)
	if err != nil {
		return err
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	w := bufio.NewWriter(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	switch *format {
	case "matrix":
		m, err := spec.Generate()
		if err != nil {
			return err
		}
		if err := farmer.WriteMatrixCSV(w, m); err != nil {
			return err
		}
	case "transactions":
		d, err := spec.GenerateDiscrete(*buckets)
		if err != nil {
			return err
		}
		if err := farmer.WriteTransactions(w, d); err != nil {
			return err
		}
		if *describe {
			fmt.Fprint(stderr, farmer.Describe(d).String())
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	fmt.Fprintf(stderr, "datagen: %s %dx%d (class1=%d, seed=%d)\n",
		spec.Name, spec.Rows, spec.Cols, spec.Class1Rows, spec.Seed)
	return nil
}

// resolveSpec maps the preset/scale flags or the custom dimensions to a
// generator spec.
func resolveSpec(preset, scale string, rows, cols, class1, informative int,
	effect, flip, quantize float64) (synth.Spec, error) {
	if preset != "" {
		name := strings.ToUpper(preset)
		var spec synth.Spec
		ok := false
		switch scale {
		case "bench":
			spec, ok = synth.BenchSpec(name)
		case "paper":
			spec, ok = synth.PaperSpec(name)
		case "table2":
			for _, s := range synth.Table2Specs() {
				if s.Name == name {
					spec, ok = s, true
				}
			}
		default:
			return synth.Spec{}, fmt.Errorf("unknown scale %q", scale)
		}
		if !ok {
			return synth.Spec{}, fmt.Errorf("unknown preset %q", preset)
		}
		return spec, nil
	}
	if rows > 0 {
		return synth.Spec{
			Name: "custom", Rows: rows, Cols: cols, Class1Rows: class1,
			ClassNames:  [2]string{"class1", "class0"},
			Informative: informative, Effect: effect, FlipProb: flip,
			Quantize: quantize, Seed: 1,
		}, nil
	}
	return synth.Spec{}, fmt.Errorf("need -preset or -rows/-cols/-class1")
}
