package farmer_test

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api_surface.golden from the current package")

// apiSurface renders the exported surface of the root package: one line
// per exported top-level identifier, with full signatures for functions.
// Changing the public API is deliberate work; this test makes sure it
// never happens as a side effect.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["farmer"]
	if !ok {
		t.Fatalf("package farmer not found, got %v", pkgs)
	}

	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue
				}
				sig := &ast.FuncDecl{Name: d.Name, Type: d.Type}
				var buf bytes.Buffer
				if err := printer.Fprint(&buf, fset, sig); err != nil {
					t.Fatal(err)
				}
				// Collapse any multi-line signature to one line.
				lines = append(lines, strings.Join(strings.Fields(buf.String()), " "))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							lines = append(lines, "type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						for _, n := range s.Names {
							if n.IsExported() {
								lines = append(lines, kw+" "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func TestAPISurfaceGolden(t *testing.T) {
	got := apiSurface(t)
	const golden = "testdata/api_surface.golden"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v — run `go test -run TestAPISurfaceGolden -update .` after an intentional API change", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		set := func(ls []string) map[string]bool {
			m := make(map[string]bool, len(ls))
			for _, l := range ls {
				if l != "" {
					m[l] = true
				}
			}
			return m
		}
		gs, ws := set(gotLines), set(wantLines)
		for l := range gs {
			if !ws[l] {
				t.Errorf("added to API surface: %s", l)
			}
		}
		for l := range ws {
			if !gs[l] {
				t.Errorf("removed from API surface: %s", l)
			}
		}
		t.Fatalf("exported API changed — if intentional, run `go test -run TestAPISurfaceGolden -update .`")
	}
}
