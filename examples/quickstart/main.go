// Quickstart: mine interesting rule groups from the paper's running
// example (Figure 1) and print them with their lower bounds.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	farmer "repro"
)

// The table of Figure 1(a): five samples over items a..t, three labelled C
// and two labelled notC.
const table = `
C    : a b c l o s
C    : a d e h p l r
C    : a c e h o q t
notC : a e f h p r
notC : b d f g l q s t
`

func main() {
	d, err := farmer.ReadTransactions(strings.NewReader(table))
	if err != nil {
		log.Fatal(err)
	}

	res, err := farmer.RunFARMER(context.Background(), d, d.ClassIndex("C"), farmer.MineOptions{
		MinSup:             2,   // the rule must cover ≥2 class-C samples
		MinConf:            0.7, // and be ≥70% confident
		ComputeLowerBounds: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d interesting rule groups (searched %d row-enumeration nodes):\n\n",
		len(res.Groups), res.Stats().NodesVisited)
	for _, g := range res.Groups {
		fmt.Println(g.Format(d, "C"))
		for _, lb := range g.LowerBounds {
			names := make([]string, len(lb))
			for i, it := range lb {
				names[i] = d.ItemName(it)
			}
			fmt.Printf("    most general member: {%s} -> C\n", strings.Join(names, ","))
		}
	}

	// Every itemset between a lower bound and the upper bound is a member
	// rule of the group with identical support and confidence (Lemma 2.2) —
	// that is the whole point: one group summarizes dozens of rules.
}
