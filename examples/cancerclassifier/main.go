// Cancer classification from gene expression — the paper's first
// motivating application (§1): rule groups mined by FARMER feed a
// CBA-style classifier that labels unseen samples.
//
// The program generates a synthetic tumor/normal cohort (a stand-in for the
// prostate-cancer dataset), holds out a test split, trains the IRG
// classifier, CBA and a linear SVM, and compares their accuracy.
//
//	go run ./examples/cancerclassifier
package main

import (
	"fmt"
	"log"

	farmer "repro"
)

func main() {
	spec := farmer.SynthSpec{
		Name: "cohort", Rows: 90, Cols: 400, Class1Rows: 38,
		ClassNames:  [2]string{"tumor", "normal"},
		Informative: 24, Effect: 2.0, FlipProb: 0.10,
		Modules: 6, ModuleSize: 8, Seed: 2004,
	}
	m, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	split, err := farmer.StratifiedSplit(m.Labels, 2, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cohort: %d samples × %d genes; %d train / %d test\n",
		m.NumRows(), m.NumCols(), len(split.Train), len(split.Test))

	// Rule-based pipeline: entropy-MDL discretization fitted on the
	// training samples only (it doubles as gene filtering), applied to
	// both splits so item vocabularies line up.
	disc, err := farmer.EntropyMDL(m.SelectRows(split.Train))
	if err != nil {
		log.Fatal(err)
	}
	kept := 0
	for c := 0; c < m.NumCols(); c++ {
		if disc.Kept(c) {
			kept++
		}
	}
	fmt.Printf("entropy-MDL kept %d of %d genes\n\n", kept, m.NumCols())

	train, err := disc.Apply(m.SelectRows(split.Train))
	if err != nil {
		log.Fatal(err)
	}
	test, err := disc.Apply(m.SelectRows(split.Test))
	if err != nil {
		log.Fatal(err)
	}

	labels := make([]int, len(test.Rows))
	for i := range test.Rows {
		labels[i] = test.Rows[i].Class
	}

	// IRG classifier: interesting rule groups, ranked and coverage-pruned.
	irg, err := farmer.TrainIRGClassifier(train, farmer.IRGClassifierOptions{})
	if err != nil {
		log.Fatal(err)
	}
	preds := make([]int, len(test.Rows))
	for i := range test.Rows {
		preds[i] = irg.Predict(&test.Rows[i])
	}
	fmt.Printf("IRG classifier: %5.1f%%  (%d groups kept of %d mined)\n",
		100*farmer.Accuracy(preds, labels), irg.NumGroups(), irg.Mined)

	// CBA over the rules expanded from the same groups.
	cba, err := farmer.TrainCBA(train, farmer.CBAOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i := range test.Rows {
		preds[i] = cba.Predict(&test.Rows[i])
	}
	fmt.Printf("CBA:            %5.1f%%  (%d rules kept of %d candidates)\n",
		100*farmer.Accuracy(preds, labels), len(cba.Rules), cba.CandidateRules)

	// Linear SVM on the continuous matrix.
	svm, err := farmer.TrainSVM(m.SelectRows(split.Train), farmer.SVMOptions{})
	if err != nil {
		log.Fatal(err)
	}
	svmPreds := make([]int, len(split.Test))
	svmLabels := make([]int, len(split.Test))
	for i, ri := range split.Test {
		svmPreds[i] = svm.Predict(m.Values[ri])
		svmLabels[i] = m.Labels[ri]
	}
	fmt.Printf("linear SVM:     %5.1f%%  (converged in %d epochs)\n",
		100*farmer.Accuracy(svmPreds, svmLabels), svm.Iters)
}
