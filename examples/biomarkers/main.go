// Biomarker discovery report: mine the statistically strongest rule groups
// with branch-and-bound (MineTopK) and render them as gene-level conditions
// a biologist can read (ExplainGroup) — the interpretability argument of
// the paper's introduction, end to end.
//
//	go run ./examples/biomarkers
package main

import (
	"context"
	"fmt"
	"log"

	farmer "repro"
)

func main() {
	// A synthetic leukemia-style cohort.
	spec := farmer.SynthSpec{
		Name: "leukemia", Rows: 60, Cols: 300, Class1Rows: 32,
		ClassNames:  [2]string{"ALL", "AML"},
		Informative: 18, Effect: 2.3, FlipProb: 0.08,
		Modules: 5, ModuleSize: 8, Seed: 99,
	}
	m, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}

	// Entropy-MDL discretization doubles as gene filtering.
	disc, err := farmer.EntropyMDL(m)
	if err != nil {
		log.Fatal(err)
	}
	d, err := disc.Apply(m)
	if err != nil {
		log.Fatal(err)
	}
	kept := 0
	for c := 0; c < m.NumCols(); c++ {
		if disc.Kept(c) {
			kept++
		}
	}
	fmt.Printf("cohort %d×%d; entropy-MDL kept %d genes\n\n", m.NumRows(), m.NumCols(), kept)

	for class := 0; class < 2; class++ {
		label := m.ClassNames[class]
		fmt.Printf("=== top biomarker panels for %s (by chi-square) ===\n", label)

		// Branch-and-bound top-k: no support/confidence hand-tuning needed
		// beyond a sanity minimum.
		top, err := farmer.RunTopK(context.Background(), d, class,
			farmer.TopKOptions{K: 3, Measure: farmer.MeasureChi2, MinSup: 5})
		if err != nil {
			log.Fatal(err)
		}
		for rank, sg := range top.Groups {
			// Recover the group's lower bounds for the "already implied by"
			// panels, then explain in gene-expression terms.
			g := sg.RuleGroup
			g.LowerBounds, _ = farmer.LowerBounds(d, g.Antecedent, 8)
			e := farmer.ExplainGroup(d, disc, &g, label)
			fmt.Printf("#%d (chi=%.1f)\n%s\n", rank+1, sg.Score, e.String())
		}
	}

	// The same cohort mined exhaustively for IRGs, in parallel.
	res, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{
		MinSup: 8, MinConf: 0.9, Workers: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive IRG mining at minsup=8, minconf=0.9: %d groups (%d nodes searched)\n",
		len(res.Groups), res.Stats().NodesVisited)
}
