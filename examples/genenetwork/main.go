// Gene-network sketching — the paper's second motivating application (§1):
// association rules "can capture the associations among genes", so genes
// that keep appearing together inside rule-group antecedents are candidate
// co-regulation edges.
//
// The program mines interesting rule groups for both phenotypes of a
// synthetic cohort, aggregates them into a gene graph with
// farmer.BuildGeneNetwork, prints the strongest edges and candidate
// modules, and emits Graphviz DOT for plotting.
//
//	go run ./examples/genenetwork
package main

import (
	"context"
	"fmt"
	"log"

	farmer "repro"
)

func main() {
	spec := farmer.SynthSpec{
		Name: "network", Rows: 34, Cols: 120, Class1Rows: 16,
		ClassNames:  [2]string{"stressed", "control"},
		Informative: 12, Effect: 2.2, FlipProb: 0.08,
		Modules: 4, ModuleSize: 6, Quantize: 0.8, Seed: 7,
	}
	m, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	disc, err := farmer.EqualDepth(m, 10)
	if err != nil {
		log.Fatal(err)
	}
	d, err := disc.Apply(m)
	if err != nil {
		log.Fatal(err)
	}

	// Mine both directions: groups predicting each phenotype.
	var results []*farmer.MineResult
	totalGroups := 0
	for class := 0; class < 2; class++ {
		res, err := farmer.RunFARMER(context.Background(), d, class, farmer.MineOptions{MinSup: 5, MinConf: 0.8})
		if err != nil {
			log.Fatal(err)
		}
		totalGroups += len(res.Groups)
		results = append(results, res)
	}

	graph, err := farmer.BuildGeneNetwork(m, disc, results, farmer.GeneNetOptions{
		MinWeight: 50, // keep only repeatedly co-occurring pairs
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mined %d rule groups over %d samples × %d genes\n",
		totalGroups, m.NumRows(), m.NumCols())
	fmt.Printf("gene-association graph: %d edges after thresholding\n\n", graph.NumEdges())

	fmt.Println("strongest associations:")
	edges := graph.Edges()
	if len(edges) > 10 {
		edges = edges[:10]
	}
	for _, e := range edges {
		fmt.Printf("  %-6s -- %-6s  weight %.0f\n",
			m.ColNames[e.A], m.ColNames[e.B], e.Weight)
	}

	fmt.Println("\ncandidate modules (connected components):")
	for i, comp := range graph.Components() {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		names := make([]string, len(comp))
		for j, c := range comp {
			names[j] = m.ColNames[c]
		}
		fmt.Printf("  module %d: %v\n", i+1, names)
	}

	fmt.Println("\nGraphviz export (first lines):")
	dot := graph.DOT("genenet")
	for i, line := range splitLines(dot, 5) {
		_ = i
		fmt.Println("  " + line)
	}
}

func splitLines(s string, n int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < n; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
