// Rule-group anatomy: why one group stands for many rules.
//
// Using Example 7 of the paper, the program shows an upper bound, its
// lower bounds computed by MineLB, and enumerates every member rule of the
// group (Lemma 2.2: exactly the itemsets sandwiched between some lower
// bound and the upper bound).
//
//	go run ./examples/lowerbounds
package main

import (
	"fmt"
	"log"
	"strings"

	farmer "repro"
)

func main() {
	// Example 7's universe: the group's antecedent support is row 1; rows
	// 2 and 3 are the "outside" rows that shape the lower bounds.
	const table = `
G    : a b c d e
notG : a b c f
notG : c d e g
`
	d, err := farmer.ReadTransactions(strings.NewReader(table))
	if err != nil {
		log.Fatal(err)
	}

	name := func(items []farmer.Item) string {
		parts := make([]string, len(items))
		for i, it := range items {
			parts[i] = d.ItemName(it)
		}
		return strings.Join(parts, "")
	}

	// The upper bound: the closure of {a,d} is the full signature abcde
	// (item ids follow first-seen order: a=0 ... g=6).
	upper := farmer.Closure(d, []farmer.Item{0, 3})
	fmt.Printf("upper bound antecedent: %s (rows %v)\n",
		name(upper), farmer.SupportSet(d, upper))

	lowers, truncated := farmer.LowerBounds(d, upper, 0)
	if truncated {
		log.Fatal("unexpected truncation")
	}
	fmt.Printf("lower bounds (most general members): ")
	for i, lb := range lowers {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(name(lb))
	}
	fmt.Println()

	// Enumerate the whole group: every subset of the upper bound that
	// contains some lower bound has the same row support (Lemma 2.2).
	fmt.Println("\nall member rules of the group:")
	members := 0
	var walk func(idx int, chosen []farmer.Item)
	walk = func(idx int, chosen []farmer.Item) {
		if idx == len(upper) {
			if len(chosen) == 0 {
				return
			}
			for _, lb := range lowers {
				if containsAll(chosen, lb) {
					members++
					fmt.Printf("  %-6s -> G\n", name(chosen))
					return
				}
			}
			return
		}
		walk(idx+1, chosen)
		walk(idx+1, append(chosen, upper[idx]))
	}
	walk(0, nil)
	fmt.Printf("\n%d rules summarized by 1 upper bound + %d lower bounds\n",
		members, len(lowers))
}

// containsAll reports whether sorted slice a contains every element of
// sorted slice b.
func containsAll(a, b []farmer.Item) bool {
	i := 0
	for _, x := range b {
		for i < len(a) && a[i] < x {
			i++
		}
		if i >= len(a) || a[i] != x {
			return false
		}
		i++
	}
	return true
}
