package farmer

import (
	"context"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Core data model, re-exported from the implementation packages so that
// callers only ever import this package.
type (
	// Item identifies a column value (a discretized gene level).
	Item = dataset.Item
	// Row is one sample: a sorted item set plus a class label.
	Row = dataset.Row
	// Dataset is an in-memory categorical table.
	Dataset = dataset.Dataset
	// Matrix is a continuous gene-expression matrix with class labels.
	Matrix = dataset.Matrix

	// MineOptions configures Mine; see the field documentation on
	// core.Options (MinSup, MinConf, MinChi, ComputeLowerBounds,
	// MaxLowerBounds, and the ablation switches).
	MineOptions = core.Options
	// MineResult is Mine's outcome: the rule groups plus search statistics.
	MineResult = core.Result
	// RuleGroup is one interesting rule group: upper bound, optional lower
	// bounds, supporting rows, support, confidence and chi-square value.
	RuleGroup = core.RuleGroup
	// MineStats records search effort and pruning effectiveness.
	MineStats = core.Stats

	// Measure selects the objective of MineTopK (chi-square, entropy gain,
	// or gini gain — all convex, so branch-and-bound applies).
	Measure = core.Measure
	// ScoredGroup is a rule group with its objective value.
	ScoredGroup = core.ScoredGroup
)

// Objectives for MineTopK.
const (
	// MeasureChi2 ranks groups by the 2×2 chi-square statistic.
	MeasureChi2 = core.MeasureChi2
	// MeasureEntropyGain ranks groups by information gain.
	MeasureEntropyGain = core.MeasureEntropyGain
	// MeasureGiniGain ranks groups by Gini-impurity reduction.
	MeasureGiniGain = core.MeasureGiniGain
)

// Mine runs FARMER over d for rules predicting the given consequent class
// index and returns the interesting rule groups satisfying the options'
// constraints. See Definition 2.2 of the paper: a rule group is interesting
// iff every strictly more general group it contains has strictly lower
// confidence.
//
// Deprecated: use RunFARMER, which adds context cancellation and folds the
// parallel and streaming variants into the options struct.
func Mine(d *Dataset, consequent int, opt MineOptions) (*MineResult, error) {
	return RunFARMER(context.Background(), d, consequent, opt)
}

// MineContext is Mine under a context: cancellation or deadline expiry
// stops the search within one node expansion and returns ctx.Err() together
// with a partial result (the groups emitted so far and the statistics of
// the work actually done).
//
// Deprecated: use RunFARMER, its canonical name.
func MineContext(ctx context.Context, d *Dataset, consequent int, opt MineOptions) (*MineResult, error) {
	return RunFARMER(ctx, d, consequent, opt)
}

// MineStream is MineContext with streaming emission: each interesting rule
// group is delivered to onGroup as soon as it is accepted, in the same
// order Mine would report it. A non-nil error from onGroup aborts the
// search and is returned verbatim. The returned result carries statistics
// only; its Groups field is nil.
//
// Deprecated: use RunFARMER with the OnGroup options field.
func MineStream(ctx context.Context, d *Dataset, consequent int, opt MineOptions, onGroup func(RuleGroup) error) (*MineResult, error) {
	opt.OnGroup = onGroup
	opt.Workers = 0
	return RunFARMER(ctx, d, consequent, opt)
}

// MineParallel is Mine spread across worker goroutines (workers ≤ 0 uses
// GOMAXPROCS); results are identical to Mine, in deterministic antecedent
// order.
//
// Deprecated: use RunFARMER with the Workers options field.
func MineParallel(d *Dataset, consequent int, opt MineOptions, workers int) (*MineResult, error) {
	return MineParallelContext(context.Background(), d, consequent, opt, workers)
}

// MineParallelContext is MineParallel under a context. On cancellation all
// workers drain and exit before it returns ctx.Err() with the merged
// partial statistics; no rule groups are reported (the interestingness
// fixpoint is not sound on a partial candidate set).
//
// Deprecated: use RunFARMER with the Workers options field.
func MineParallelContext(ctx context.Context, d *Dataset, consequent int, opt MineOptions, workers int) (*MineResult, error) {
	opt.Workers = workers
	if workers <= 0 {
		opt.Workers = -1 // keep the historical "≤ 0 means GOMAXPROCS"
	}
	opt.OnGroup = nil
	return RunFARMER(ctx, d, consequent, opt)
}

// MineTopK returns the k rule groups maximizing the measure (subject to a
// minimum support) by branch-and-bound over the row enumeration tree with
// the Morishita–Sese convex bound, best-first. Unlike Mine it ranks ALL
// rule groups, not just the interesting ones.
//
// Deprecated: use RunTopK, which adds context cancellation, an options
// struct and a stats-carrying result.
func MineTopK(d *Dataset, consequent, k int, measure Measure, minsup int) ([]ScoredGroup, error) {
	return MineTopKContext(context.Background(), d, consequent, k, measure, minsup)
}

// MineTopKContext is MineTopK under a context; on cancellation it returns
// the best groups found so far together with ctx.Err().
//
// Deprecated: use RunTopK, its canonical name.
func MineTopKContext(ctx context.Context, d *Dataset, consequent, k int, measure Measure, minsup int) ([]ScoredGroup, error) {
	res, err := RunTopK(ctx, d, consequent, TopKOptions{K: k, Measure: measure, MinSup: minsup})
	if res == nil {
		return nil, err
	}
	return res.Groups, err
}

// LowerBounds computes the lower bounds (minimal generators) of an
// antecedent over d: the minimal itemsets L ⊆ antecedent with
// R(L) = R(antecedent). maxLB > 0 caps the expansion; the boolean reports
// truncation. This is the MineLB subroutine (Figure 9 of the paper),
// exposed for callers who obtained an upper bound elsewhere.
func LowerBounds(d *Dataset, antecedent []Item, maxLB int) ([][]Item, bool) {
	rows := dataset.SupportSet(d, antecedent)
	return core.MineLowerBounds(d, antecedent, rows, maxLB)
}

// LowerBoundsContext is LowerBounds under a context; on cancellation it
// returns nil bounds and ctx.Err() (a partial generator set is not
// meaningful).
func LowerBoundsContext(ctx context.Context, d *Dataset, antecedent []Item, maxLB int) ([][]Item, bool, error) {
	rows := dataset.SupportSet(d, antecedent)
	return core.MineLowerBoundsContext(ctx, d, antecedent, rows, maxLB)
}

// SupportSet returns R(items): the ids of rows containing every item.
func SupportSet(d *Dataset, items []Item) []int {
	return dataset.SupportSet(d, items).Ints()
}

// CommonItems returns I(rows): the largest itemset shared by all the rows.
func CommonItems(d *Dataset, rows []int) []Item {
	return dataset.CommonItems(d, rows)
}

// Closure returns the closed itemset of items in d: I(R(items)).
func Closure(d *Dataset, items []Item) []Item {
	return dataset.Closure(d, items)
}

// Replicate returns d with its rows repeated k times (k ≥ 1) — the §4.1
// scale-up workload.
func Replicate(d *Dataset, k int) *Dataset {
	return dataset.Replicate(d, k)
}

// DatasetSummary holds the descriptive statistics of a categorical dataset
// that determine mining difficulty (class balance, row lengths, item
// support distribution, density).
type DatasetSummary = dataset.Summary

// Describe computes the summary statistics of d.
func Describe(d *Dataset) *DatasetSummary {
	return dataset.Describe(d)
}
