package farmer

import (
	"context"
	"fmt"

	"repro/internal/carpenter"
	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/cobbler"
	"repro/internal/columne"
	"repro/internal/core"
	"repro/internal/engine"
)

// This file is the canonical mining API: one entry point per miner, context
// first, with an options struct whose optional Workers / OnX callback
// fields select parallel execution and streaming emission. The historical
// Mine*/MineContext/MineStream/MineParallel name families in farmer.go and
// baselines.go are thin deprecated wrappers over these functions.

// MinerResult is the common face of every miner's result type: run
// statistics plus the size of the materialized batch. All seven result
// types (MineResult, TopKResult, CharmResult, ClosetResult, ColumnEResult,
// CarpenterResult, CobblerResult) satisfy it, so callers that juggle
// several miners — the farmerd job manager, for one — can handle them
// uniformly.
type MinerResult = engine.MinerResult

// Every result type satisfies MinerResult; keep this list in sync with the
// miners.
var (
	_ MinerResult = (*MineResult)(nil)
	_ MinerResult = (*TopKResult)(nil)
	_ MinerResult = (*CharmResult)(nil)
	_ MinerResult = (*ClosetResult)(nil)
	_ MinerResult = (*ColumnEResult)(nil)
	_ MinerResult = (*CarpenterResult)(nil)
	_ MinerResult = (*CobblerResult)(nil)
)

type (
	// TopKOptions configures RunTopK (K, Measure, MinSup), plus the
	// anytime knobs: Strategy, MaxMillis/MaxNodes budgets, Delta for the
	// leap pruner, Seed for the sampler, and Workers for parallel
	// best-first search.
	TopKOptions = core.TopKOptions
	// TopKResult is RunTopK's outcome: the ranked groups, best first, plus
	// search statistics. Budgeted runs mark Partial and certify Gap.
	TopKResult = core.TopKResult
	// Strategy selects RunTopK's search strategy: exact depth-first
	// (default), anytime best-first, relaxed leap pruning, or random-walk
	// sampling.
	Strategy = core.Strategy
)

// The top-k search strategies.
const (
	// StrategyExact is the exhaustive depth-first branch-and-bound walk —
	// the zero value, so existing callers are unaffected.
	StrategyExact = core.StrategyExact
	// StrategyBestFirst expands nodes in descending bound order, keeping
	// a valid top-k at every instant; budget stops certify an optimality
	// gap. Exhausted, it matches StrategyExact.
	StrategyBestFirst = core.StrategyBestFirst
	// StrategyLeap prunes subtrees whose bound cannot improve the k-th
	// score by more than a (1+Delta) factor, certifying the relaxation as
	// the gap.
	StrategyLeap = core.StrategyLeap
	// StrategySample random-walks the row lattice under a node budget; no
	// certificate, deterministic per Seed.
	StrategySample = core.StrategySample
)

// ErrBudgetExceeded is the engine's budget-stop marker. RunTopK handles it
// internally (a budget stop is a successful partial answer, not an error);
// it is exported for callers that drive miners through the engine directly.
var ErrBudgetExceeded = engine.ErrBudgetExceeded

// ParseStrategy maps a canonical strategy name ("exact", "best_first",
// "leap", "sample") to its Strategy; the empty string parses as exact.
func ParseStrategy(name string) (Strategy, error) { return core.ParseStrategy(name) }

// ParseMeasure maps a canonical measure name ("chi2", "entropy", "gini")
// to its Measure; the empty string parses as chi2.
func ParseMeasure(name string) (Measure, error) { return core.ParseMeasure(name) }

// RunFARMER mines the interesting rule groups of d predicting the given
// consequent class — the canonical form of Mine. Cancellation or deadline
// expiry of ctx stops the search within one node expansion and returns
// ctx.Err() together with a partial result.
//
// opt.Workers selects the execution mode: 0 runs the sequential miner; a
// positive value runs the work-stealing parallel scheduler with exactly
// that many workers; a negative value is the auto mode — GOMAXPROCS
// workers, except that inputs below ParallelFallbackRows rows run the
// sequential miner instead (at bench scale the scheduler's setup and
// merge overhead loses to sequential Mine on several datasets — see the
// README performance notes; the mined groups are identical either way). A
// cancelled parallel run reports no groups (the interestingness fixpoint
// is not sound on a partial candidate set), only merged statistics.
//
// opt.OnGroup switches to streaming emission: each interesting rule group
// is delivered as soon as it is accepted, in the same order Mine would
// report it, and the result carries statistics only. A callback error
// aborts the run and is returned verbatim. Streaming is sequential;
// combining OnGroup with Workers != 0 is an error.
func RunFARMER(ctx context.Context, d *Dataset, consequent int, opt MineOptions) (*MineResult, error) {
	switch {
	case opt.OnGroup != nil:
		if opt.Workers != 0 {
			return nil, fmt.Errorf("farmer: OnGroup streaming is sequential; Workers must be 0, got %d", opt.Workers)
		}
		return core.MineStream(ctx, d, consequent, opt, opt.OnGroup)
	case opt.Workers != 0:
		if opt.Workers < 0 && len(d.Rows) < ParallelFallbackRows {
			return core.MineContext(ctx, d, consequent, opt)
		}
		return core.MineParallelContext(ctx, d, consequent, opt, opt.Workers)
	default:
		return core.MineContext(ctx, d, consequent, opt)
	}
}

// RunTopK returns the opt.K rule groups maximizing opt.Measure (subject to
// opt.MinSup) by branch-and-bound — the canonical form of MineTopK. On
// cancellation it returns the best groups found so far together with
// ctx.Err().
//
// Setting opt.MaxMillis or opt.MaxNodes turns the search into an anytime
// run: it stops within one node expansion of the budget and returns the
// best-so-far answer with Partial set and a certified optimality Gap — no
// error, since a budget stop is the anytime contract working as intended.
// opt.Strategy picks the search order explicitly; a budget with the
// default exact strategy upgrades to StrategyBestFirst automatically.
func RunTopK(ctx context.Context, d *Dataset, consequent int, opt TopKOptions) (*TopKResult, error) {
	return core.TopK(ctx, d, consequent, opt)
}

// RunCHARM mines all closed itemsets of d with the CHARM algorithm — the
// canonical form of MineClosedCHARM. Cancellation stops the search within
// one node expansion and returns ctx.Err() with the partial result.
// opt.OnClosed switches to streaming emission in discovery order.
func RunCHARM(ctx context.Context, d *Dataset, opt CharmOptions) (*CharmResult, error) {
	if opt.OnClosed != nil {
		return charm.MineStream(ctx, d, opt, opt.OnClosed)
	}
	return charm.MineContext(ctx, d, opt)
}

// RunCLOSET mines all closed itemsets of d with the CLOSET-style FP-tree
// miner — the canonical form of MineClosedFPTree. opt.OnClosed switches to
// streaming emission in discovery order.
func RunCLOSET(ctx context.Context, d *Dataset, opt ClosetOptions) (*ClosetResult, error) {
	if opt.OnClosed != nil {
		return closet.MineStream(ctx, d, opt, opt.OnClosed)
	}
	return closet.MineContext(ctx, d, opt)
}

// RunColumnE mines one representative rule per interesting rule group by
// column enumeration — the canonical form of MineColumnE. opt.OnRule
// switches to streaming emission; ColumnE's interestingness is a global
// fixpoint, so rules are delivered during the finish phase.
func RunColumnE(ctx context.Context, d *Dataset, consequent int, opt ColumnEOptions) (*ColumnEResult, error) {
	if opt.OnRule != nil {
		return columne.MineStream(ctx, d, consequent, opt, opt.OnRule)
	}
	return columne.MineContext(ctx, d, consequent, opt)
}

// RunCARPENTER mines all closed itemsets of d by row enumeration — the
// canonical form of MineClosedCARPENTER. opt.OnClosed switches to
// streaming emission in discovery order.
func RunCARPENTER(ctx context.Context, d *Dataset, opt CarpenterOptions) (*CarpenterResult, error) {
	if opt.OnClosed != nil {
		return carpenter.MineStream(ctx, d, opt, opt.OnClosed)
	}
	return carpenter.MineContext(ctx, d, opt)
}

// RunCOBBLER mines all closed itemsets of d with COBBLER's dynamic
// row/feature enumeration — the canonical form of MineClosedCOBBLER.
// opt.OnClosed switches to streaming emission in discovery order.
func RunCOBBLER(ctx context.Context, d *Dataset, opt CobblerOptions) (*CobblerResult, error) {
	if opt.OnClosed != nil {
		return cobbler.MineStream(ctx, d, opt, opt.OnClosed)
	}
	return cobbler.MineContext(ctx, d, opt)
}
